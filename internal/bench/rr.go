package bench

import (
	"fmt"
	"strings"

	"k23/internal/apps"
	"k23/internal/rr"
)

// RRRun is one point of the E19 checkpoint-interval sweep: record the
// redis-like server at a given interval and measure the space the
// checkpoint chain costs (pages copied vs shared across all deltas)
// against the time a mid-run seek saves (instructions re-executed from
// the nearest checkpoint vs a replay from tick 0). Every number is
// derived from the deterministic simulation, so the table goldens.
type RRRun struct {
	Interval    uint64
	Checkpoints int
	// PagesCopied / PagesShared sum the dirty-page-delta counters over
	// the whole checkpoint chain.
	PagesCopied int
	PagesShared int
	// TotalSteps is the run length in retired guest instructions.
	TotalSteps uint64
	// MidSeekSteps / TailSeekSteps count the instructions SeekSeq
	// re-executed to reach the run's middle and final event ordinals;
	// TotalSteps is the replay-from-0 baseline both beat. The tail seek
	// is the one that scales with the interval: its cost is the distance
	// from the last checkpoint to the end of the run.
	MidSeekSteps  uint64
	TailSeekSteps uint64
}

// MeasureRR sweeps the checkpoint interval over the redis-like workload
// with a fixed seed.
func MeasureRR(intervals []uint64) ([]RRRun, error) {
	var out []RRRun
	for _, every := range intervals {
		spec := rr.RunSpec{
			Name: "redis", Path: apps.RedisPath, Argv: []string{"redis-server", "1"},
			Server: true, Requests: 10,
			Seed: 11, CheckpointEvery: every,
		}
		s, err := rr.Record(spec, rr.Hooks{})
		if err != nil {
			return nil, err
		}
		if err := s.Run(); err != nil {
			return nil, err
		}
		r := RRRun{Interval: every, Checkpoints: s.NumCheckpoints(), TotalSteps: s.Rec.Final.Steps}
		for _, c := range s.Rec.Checkpoints {
			r.PagesCopied += c.PagesCopied
			r.PagesShared += c.PagesShared
		}
		mid := s.Rec.Events[len(s.Rec.Events)/2].Seq
		if mid < s.Rec.Checkpoints[0].Seq {
			mid = s.Rec.Checkpoints[0].Seq
		}
		sk, err := s.SeekSeq(mid)
		if err != nil {
			return nil, err
		}
		r.MidSeekSteps = sk.ReExecuted
		tail, err := s.SeekSeq(s.Rec.Events[len(s.Rec.Events)-1].Seq)
		if err != nil {
			return nil, err
		}
		r.TailSeekSteps = tail.ReExecuted
		out = append(out, r)
	}
	return out, nil
}

// FormatRR renders the E19 sweep.
func FormatRR(rows []RRRun) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %-6s %-12s %-12s %-12s %-10s %-11s %s\n",
		"interval", "ckpts", "pages-copied", "pages-shared", "total-steps", "mid-seek", "tail-seek", "tail-saving")
	for _, r := range rows {
		saving := "-"
		if r.TotalSteps > 0 {
			saving = fmt.Sprintf("%.1f%%", 100*(1-float64(r.TailSeekSteps)/float64(r.TotalSteps)))
		}
		fmt.Fprintf(&b, "%-10d %-6d %-12d %-12d %-12d %-10d %-11d %s\n",
			r.Interval, r.Checkpoints, r.PagesCopied, r.PagesShared, r.TotalSteps, r.MidSeekSteps, r.TailSeekSteps, saving)
	}
	return b.String()
}
