package bench

import (
	"fmt"
	"strings"

	"k23/internal/apps"
	"k23/internal/core"
)

// Table2Row is one application's offline-phase profile.
type Table2Row struct {
	Name  string
	Sites int
	Paper int
}

// table2Workloads lists the Table 2 applications with the paper's counts.
var table2Workloads = []struct {
	name     string
	path     string
	argv     []string
	server   bool
	requests int
	paper    int
}{
	{"pwd", apps.PwdPath, []string{"pwd"}, false, 0, 7},
	{"touch", apps.TouchPath, []string{"touch", "/data/new.txt"}, false, 0, 9},
	{"ls", apps.LsPath, []string{"ls", "/data"}, false, 0, 10},
	{"cat", apps.CatPath, []string{"cat", "/data/notes.txt"}, false, 0, 11},
	{"clear", apps.ClearPath, []string{"clear"}, false, 0, 13},
	{"sqlite", apps.SqlitePath, []string{"sqlite3", "120"}, false, 0, 20},
	{"nginx", apps.NginxPath, []string{"nginx", "0"}, true, 30, 43},
	{"lighttpd", apps.LighttpdPath, []string{"lighttpd", "0"}, true, 30, 44},
	{"redis", apps.RedisPath, []string{"redis-server", "1"}, true, 30, 92},
}

// Table2 runs the offline phase for every Table 2 application and
// reports the unique syscall-site counts.
func Table2() ([]Table2Row, error) {
	var rows []Table2Row
	for _, wl := range table2Workloads {
		w, err := macroWorld()
		if err != nil {
			return nil, err
		}
		off := &core.Offline{LogDir: "/var/k23/logs"}
		run, err := off.Start(w, wl.path, wl.argv, nil)
		if err != nil {
			return nil, fmt.Errorf("bench: offline %s: %w", wl.name, err)
		}
		if wl.server {
			req := make([]byte, apps.RequestSize)
			port := apps.BasePort + run.Process().PID
			for i := 0; i < 5000; i++ {
				w.K.Run(10_000)
				if err := w.K.InjectConn(port, req, wl.requests, nil); err == nil {
					break
				}
			}
		}
		if err := w.K.RunUntilExit(run.Process(), 2_000_000_000); err != nil {
			return nil, fmt.Errorf("bench: offline run %s: %w", wl.name, err)
		}
		n, err := run.Finish()
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table2Row{Name: wl.name, Sites: n, Paper: wl.paper})
	}
	return rows, nil
}

// FormatTable2 renders the rows next to the paper's counts.
func FormatTable2(rows []Table2Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %-10s %s\n", "Application", "measured", "paper")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %-10d %d\n", r.Name, r.Sites, r.Paper)
	}
	return b.String()
}
