package bench

import (
	"fmt"
	"strings"

	"k23/internal/apps"
	"k23/internal/interpose"
	"k23/internal/interpose/variants"
	"k23/internal/obsv"
	"k23/internal/probe"
)

// ProbesProgram is the single probe line the `-claim probes` artifact
// runs: per-mechanism write()-latency histograms, the bpftrace one-liner
// equivalent of a dedicated metrics collector.
const ProbesProgram = `syscall:write:exit { hist(cycles) by (mech) }`

// probesRequests is the request count each variant serves. The workload
// is the Table 6 lighttpd single-worker row — every request ends in a
// write(), so the histogram shape separates the mechanisms' dispatch
// costs.
const probesRequests = 40

// probesConfig is the workload the claim drives under every variant.
var probesConfig = MacroConfig{
	Name: "lighttpd (1 worker, 0 KB)", Path: apps.LighttpdPath,
	Argv: []string{"lighttpd", "0"}, Workers: 1,
}

// ProbesVariants lists the claim's rows: native plus the Table 5
// interposers.
func ProbesVariants() []string {
	return append([]string{"native"}, Table5Variants()...)
}

// MeasureProbes runs ProbesProgram over the lighttpd workload under
// every Table 5 variant and merges the per-variant engine snapshots into
// one aggregation — the same shape a fleet of heterogeneous machines
// produces. Engines ride the side-stream hooks and charge no guest
// cycles, so every histogram value is exactly what the unprobed run
// costs (the E15 non-perturbation property), which is what makes the
// output golden-able.
func MeasureProbes() (*probe.Snapshot, error) {
	compiled, err := obsv.CompileProbes(ProbesProgram)
	if err != nil {
		return nil, err
	}
	merged := &probe.Snapshot{}
	for _, name := range ProbesVariants() {
		spec, ok := variants.ByName(name)
		if !ok {
			return nil, fmt.Errorf("bench: unknown variant %s", name)
		}
		w, err := macroWorld()
		if err != nil {
			return nil, err
		}
		logPath := ""
		if spec.NeedsOfflineLog {
			if logPath, err = offlineFor(w, probesConfig); err != nil {
				return nil, err
			}
		}
		obs := obsv.New(obsv.Options{Probes: compiled, ProbeMech: name})
		obs.Install(w.K)
		l := spec.New(interpose.Config{}, logPath)
		if _, err := serveRequests(w, l, probesConfig, probesRequests); err != nil {
			return nil, fmt.Errorf("bench: probes %s: %w", name, err)
		}
		merged.Merge(obs.Snapshot().Probes)
	}
	return merged, nil
}

// FormatProbes renders the merged aggregation: one row per mechanism in
// Table 5 order, with the log2 cycle histogram spelled out
// bucket-by-bucket (bucket b holds values in [2^(b-1), 2^b)).
func FormatProbes(s *probe.Snapshot) string {
	byMech := make(map[string]*probe.Row, len(s.Rows))
	for _, r := range s.Rows {
		if len(r.Key) == 1 {
			byMech[r.Key[0]] = r
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "probe: %s\n", ProbesProgram)
	fmt.Fprintf(&b, "workload: %s, %d requests per variant; prog hash %016x\n",
		probesConfig.Name, probesRequests, s.ProgHash)
	fmt.Fprintf(&b, "%-22s %-8s %-12s %s\n", "Mechanism", "writes", "mean-cycles", "log2 histogram (bucket:count)")
	for _, name := range ProbesVariants() {
		r := byMech[name]
		if r == nil {
			fmt.Fprintf(&b, "%-22s %-8d %-12s -\n", name, 0, "-")
			continue
		}
		var hist []string
		for bkt, c := range r.Buckets {
			if c != 0 {
				hist = append(hist, fmt.Sprintf("%d:%d", bkt, c))
			}
		}
		fmt.Fprintf(&b, "%-22s %-8d %-12.1f %s\n",
			name, r.Count, float64(r.Val)/float64(r.Count), strings.Join(hist, " "))
	}
	return b.String()
}
