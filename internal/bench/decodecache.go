package bench

import (
	"fmt"
	"time"

	"k23/internal/apps"
	"k23/internal/cpu"
	"k23/internal/interpose"
)

// DecodeCacheRun is one wall-clock measurement of raw simulator speed
// with the decoded-instruction cache in a given mode. Unlike the Table 5
// and 6 rows — which measure simulated guest cycles and are by
// construction identical in both cache modes — this measures how fast the
// simulator itself steps, which is what the cache exists to improve.
type DecodeCacheRun struct {
	Workload string
	CacheOff bool
	// Steps is the number of guest instructions retired.
	Steps uint64
	// Elapsed is host wall-clock time.
	Elapsed time.Duration
	// Stats aggregates the decode cache counters over every core.
	Stats cpu.DecodeCacheStats
}

// StepsPerSec returns retired guest instructions per host second.
func (r DecodeCacheRun) StepsPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Steps) / r.Elapsed.Seconds()
}

// MeasureDecodeCacheMicro runs the syscall-500 stress loop (the Table 5
// workload) natively for n iterations and measures simulator stepping
// speed.
func MeasureDecodeCacheMicro(n int, cacheOff bool) (DecodeCacheRun, error) {
	w := microWorld()
	w.K.DecodeCacheOff = cacheOff
	// Isolate the decode-cache layer: with the superblock JIT on, hot
	// code bypasses the cache entirely and the hit-rate numbers stop
	// describing it (bench/jit.go measures the JIT layer).
	w.K.JITOff = true
	start := time.Now()
	p, err := interpose.Native{}.Launch(w, MicroPath, []string{"micro", fmt.Sprintf("%d", n)}, nil)
	if err != nil {
		return DecodeCacheRun{}, err
	}
	if err := w.K.RunUntilExit(p, 2_000_000_000); err != nil {
		return DecodeCacheRun{}, err
	}
	elapsed := time.Since(start)
	return finishDecodeCacheRun(w, "micro-syscall500", cacheOff, elapsed), nil
}

// MeasureDecodeCacheMacro runs the redis-like single-I/O-thread server
// (the Table 6 redis row) natively, drives it with injected requests, and
// measures simulator stepping speed.
func MeasureDecodeCacheMacro(requests int, cacheOff bool) (DecodeCacheRun, error) {
	w, err := macroWorld()
	if err != nil {
		return DecodeCacheRun{}, err
	}
	w.K.DecodeCacheOff = cacheOff
	w.K.JITOff = true // isolate the decode-cache layer (see Micro)
	start := time.Now()
	p, err := interpose.Native{}.Launch(w, apps.RedisPath, []string{"redis-server", "1"}, nil)
	if err != nil {
		return DecodeCacheRun{}, err
	}
	req := make([]byte, apps.RequestSize)
	port := apps.BasePort + p.PID
	injected := false
	for i := 0; i < 5000 && !injected; i++ {
		w.K.Run(10_000)
		if err := w.K.InjectConn(port, req, requests, nil); err == nil {
			injected = true
		}
	}
	if !injected {
		return DecodeCacheRun{}, fmt.Errorf("bench: redis never listened on %d", port)
	}
	if err := w.K.RunUntilExit(p, 3_000_000_000); err != nil {
		return DecodeCacheRun{}, err
	}
	elapsed := time.Since(start)
	return finishDecodeCacheRun(w, "redis-like", cacheOff, elapsed), nil
}

func finishDecodeCacheRun(w *interpose.World, name string, cacheOff bool, elapsed time.Duration) DecodeCacheRun {
	run := DecodeCacheRun{
		Workload: name,
		CacheOff: cacheOff,
		Elapsed:  elapsed,
		Stats:    w.K.DecodeCacheStats(),
	}
	for _, p := range w.K.Processes() {
		for _, t := range p.Threads {
			run.Steps += t.Core.Insts
		}
	}
	return run
}

// FormatDecodeCache renders cache-on/cache-off measurement pairs with
// the speedup factor, for cmd/benchtab and EXPERIMENTS.md.
func FormatDecodeCache(pairs [][2]DecodeCacheRun) string {
	out := fmt.Sprintf("%-18s %-14s %-14s %-9s %-9s %s\n",
		"Workload", "cached", "uncached", "speedup", "hit-rate", "hits/misses/inval")
	for _, pr := range pairs {
		on, off := pr[0], pr[1]
		speedup := 0.0
		if off.StepsPerSec() > 0 {
			speedup = on.StepsPerSec() / off.StepsPerSec()
		}
		out += fmt.Sprintf("%-18s %-14s %-14s %-9s %-9s %d/%d/%d\n",
			on.Workload,
			fmt.Sprintf("%.2fM st/s", on.StepsPerSec()/1e6),
			fmt.Sprintf("%.2fM st/s", off.StepsPerSec()/1e6),
			fmt.Sprintf("%.2fx", speedup),
			fmt.Sprintf("%.1f%%", on.Stats.HitRate()*100),
			on.Stats.Hits, on.Stats.Misses, on.Stats.Invalidations)
	}
	return out
}
