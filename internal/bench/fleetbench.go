package bench

import (
	"context"
	"fmt"
	"runtime"
	"strings"

	"k23/internal/apps"
	"k23/internal/fleet"
	"k23/internal/interpose"
)

// FleetMicroMachines builds n CPU-bound machines, each running the
// Table 5 syscall stress loop for iters iterations. The fleet is
// deterministic: machine i always gets the same seed.
func FleetMicroMachines(n, iters int) []fleet.Machine {
	out := make([]fleet.Machine, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, fleet.Machine{
			Name: fmt.Sprintf("micro-%02d", i),
			Seed: uint64(i)*0x9e3779b97f4a7c15 + 1,
			Path: MicroPath,
			Argv: []string{"micro", fmt.Sprintf("%d", iters)},
			Setup: func(w *interpose.World) error {
				w.MustRegister(buildMicro())
				return nil
			},
		})
	}
	return out
}

// FleetMacroMachines builds n redis-like server machines, each driven
// with requests keepalive requests (the Table 6 redis row's workload).
func FleetMacroMachines(n, requests int) []fleet.Machine {
	out := make([]fleet.Machine, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, fleet.Machine{
			Name:     fmt.Sprintf("redis-%02d", i),
			Seed:     uint64(i)*0x9e3779b97f4a7c15 + 1,
			Path:     apps.RedisPath,
			Argv:     []string{"redis-server", "1"},
			Server:   true,
			Requests: requests,
		})
	}
	return out
}

// FleetScalingRow is one (worker count, fleet report) measurement.
type FleetScalingRow struct {
	Workers int
	Report  *fleet.Report
}

// MeasureFleetScaling runs the same fleet once per worker count and
// returns one row per count. Any machine error fails the measurement.
func MeasureFleetScaling(ctx context.Context, machines []fleet.Machine, workerCounts []int) ([]FleetScalingRow, error) {
	return MeasureFleetScalingOpts(ctx, machines, workerCounts, fleet.Options{})
}

// MeasureFleetScalingOpts is MeasureFleetScaling with an Options template
// applied to every run (Workers is overridden per row) — used to measure
// a chaos-armed fleet.
func MeasureFleetScalingOpts(ctx context.Context, machines []fleet.Machine, workerCounts []int, tmpl fleet.Options) ([]FleetScalingRow, error) {
	var rows []FleetScalingRow
	for _, w := range workerCounts {
		opt := tmpl
		opt.Workers = w
		rep, err := fleet.Run(ctx, machines, opt)
		if err != nil {
			return nil, err
		}
		if err := rep.FirstErr(); err != nil {
			return nil, fmt.Errorf("workers=%d: %w", w, err)
		}
		rows = append(rows, FleetScalingRow{Workers: w, Report: rep})
	}
	return rows, nil
}

// FormatFleetScaling renders the workers-vs-throughput scaling table
// (EXPERIMENTS.md E14). Speedup is relative to the first row.
func FormatFleetScaling(rows []FleetScalingRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "host: %d CPUs (speedup is bounded by available cores)\n", runtime.NumCPU())
	fmt.Fprintf(&b, "%-9s %-10s %-14s %-14s %-9s %s\n",
		"workers", "machines", "steps/s", "machines/s", "speedup", "wall")
	base := 0.0
	if len(rows) > 0 {
		base = rows[0].Report.StepsPerSec()
	}
	for _, r := range rows {
		speedup := 0.0
		if base > 0 {
			speedup = r.Report.StepsPerSec() / base
		}
		fmt.Fprintf(&b, "%-9d %-10d %-14s %-14s %-9s %s\n",
			r.Workers, len(r.Report.Machines),
			fmt.Sprintf("%.2fM", r.Report.StepsPerSec()/1e6),
			fmt.Sprintf("%.1f", r.Report.MachinesPerSec()),
			fmt.Sprintf("%.2fx", speedup),
			r.Report.Wall.Round(1e6))
	}
	return b.String()
}
