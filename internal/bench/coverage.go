// Coverage claim: ground-truth syscall coverage matrices per
// (mechanism x app), measured by the shadow-map audit layer
// (internal/audit) rather than asserted by the interposers themselves.
package bench

import (
	"fmt"
	"io"
	"strings"

	"k23/internal/apps"
	"k23/internal/audit"
	"k23/internal/core"
	"k23/internal/interpose"
	"k23/internal/interpose/variants"
	"k23/internal/obsv"
)

// CoverageApps returns the coreutils workloads the coverage claim runs:
// quick, deterministic, and with overlapping syscall sets so the
// per-mechanism matrices are comparable across columns.
func CoverageApps() []MacroConfig {
	pwd, ls, cat := coreutilConfigs()
	return []MacroConfig{pwd, ls, cat}
}

// CoverageVariants lists the coverage-claim columns: one per
// interposition path (load-time rewriting, lazy rewriting, SUD, ptrace,
// and the full K23 stack).
func CoverageVariants() []string {
	return []string{"zpoline-ultra", "lazypoline", "sud", "ptrace", "k23-ultra+"}
}

// AuditApp runs one non-server workload to completion under the given
// variant with the shadow-map auditor attached at production start —
// after any offline phase, which is the controlled environment — and
// returns the audit snapshot.
func AuditApp(spec variants.Spec, path string, argv []string) (*audit.Snapshot, error) {
	w, err := macroWorld()
	if err != nil {
		return nil, err
	}
	logPath := ""
	if spec.NeedsOfflineLog {
		off := &core.Offline{LogDir: "/var/k23/logs"}
		run, err := off.Start(w, path, argv, nil)
		if err != nil {
			return nil, err
		}
		if err := w.K.RunUntilExit(run.Process(), 3_000_000_000); err != nil {
			return nil, err
		}
		if _, err := run.Finish(); err != nil {
			return nil, err
		}
		logPath = off.LogPath(path[strings.LastIndexByte(path, '/')+1:])
	}
	o := obsv.New(obsv.Options{Audit: true})
	o.Install(w.K)
	l := spec.New(interpose.Config{}, logPath)
	p, err := l.Launch(w, path, argv, nil)
	if err != nil {
		return nil, err
	}
	if err := w.K.RunUntilExit(p, 3_000_000_000); err != nil {
		return nil, err
	}
	if p.Exit.Signal != 0 {
		return nil, fmt.Errorf("bench: %s under %s died: %s", path, l.Name(), p.Exit)
	}
	return o.Snapshot().Audit, nil
}

// coreutilConfigs builds the non-server workload configs the coverage
// claim uses (reusing MacroConfig for its Name/Path/Argv triple).
func coreutilConfigs() (pwd, ls, cat MacroConfig) {
	pwd = MacroConfig{Name: "pwd", Path: apps.PwdPath, Argv: []string{"pwd"}}
	ls = MacroConfig{Name: "ls", Path: apps.LsPath, Argv: []string{"ls", "/data"}}
	cat = MacroConfig{Name: "cat", Path: apps.CatPath, Argv: []string{"cat", "/data/notes.txt"}}
	return
}

// WriteCoverageTable runs every coverage app under every coverage
// variant and writes the golden-comparable coverage matrix: per-cell
// totals plus the full per-syscall x per-mechanism counts and escapes by
// category. All ordering comes from the audit snapshot's sorted slices.
func WriteCoverageTable(w io.Writer) error {
	for _, name := range CoverageVariants() {
		spec, ok := variants.ByName(name)
		if !ok {
			return fmt.Errorf("bench: unknown coverage variant %q", name)
		}
		for _, app := range CoverageApps() {
			s, err := AuditApp(spec, app.Path, app.Argv)
			if err != nil {
				return err
			}
			FormatCoverageCell(w, app.Name, name, s)
		}
	}
	return nil
}

// CoverageTable is WriteCoverageTable into a string, for benchtab and
// the golden test.
func CoverageTable() (string, error) {
	var b strings.Builder
	if err := WriteCoverageTable(&b); err != nil {
		return "", err
	}
	return b.String(), nil
}

// FormatCoverageCell renders one (app, variant) audit snapshot in the
// golden table format.
func FormatCoverageCell(w io.Writer, app, variant string, s *audit.Snapshot) {
	t := &s.Totals
	ttfc := uint64(0)
	if p := s.MainProc(); p != nil {
		ttfc = p.TTFC
	}
	fmt.Fprintf(w, "[%s/%s] executed=%d covered=%d emulated=%d escaped=%d internal=%d ttfc=%d\n",
		app, variant, t.Oracles, t.Covered, t.Emulated, t.Escaped, t.Internal, ttfc)
	byMech := map[string][]audit.CoverageCell{}
	var mechs []string
	for _, c := range s.Coverage {
		if _, ok := byMech[c.Mech]; !ok {
			mechs = append(mechs, c.Mech)
		}
		byMech[c.Mech] = append(byMech[c.Mech], c)
	}
	// Coverage is sorted by (nr, mech); render mechanisms in first-seen
	// order of that sort for stability.
	for _, mech := range sortStrings(mechs) {
		var parts []string
		for _, c := range byMech[mech] {
			parts = append(parts, fmt.Sprintf("%s=%d", c.Name, c.Count))
		}
		fmt.Fprintf(w, "  mech %s: %s\n", mech, strings.Join(parts, " "))
	}
	byCat := map[string][]audit.EscapeStat{}
	var cats []string
	for _, e := range s.Escapes {
		if _, ok := byCat[e.Category]; !ok {
			cats = append(cats, e.Category)
		}
		byCat[e.Category] = append(byCat[e.Category], e)
	}
	for _, cat := range sortStrings(cats) {
		var parts []string
		for _, e := range byCat[cat] {
			parts = append(parts, fmt.Sprintf("%s=%d", e.Name, e.Count))
		}
		fmt.Fprintf(w, "  escapes %s: %s\n", cat, strings.Join(parts, " "))
	}
}

func sortStrings(in []string) []string {
	out := append([]string(nil), in...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
