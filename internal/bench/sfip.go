// SFIP claim (EXPERIMENTS.md E21): syscall-flow-integrity enforcement
// as a sixth mechanism column. Three measurements, all in virtual
// cycles and therefore golden-comparable:
//
//  1. Pitfall-trip matrix — every Table 3 PoC under every Table 3
//     interposer, run twice: a training pass that learns a per-world
//     policy from the audit join's classification, then an enforcement
//     pass under those policies. Escapes are excluded from training, so
//     a PoC whose escape reached the audit ledger must trip the policy.
//  2. False-positive table — the nine Table 2 applications self-trained
//     and then enforced under k23-ultra+ (which covers every call, so a
//     correct learner yields zero violations).
//  3. Micro overhead — the Table 5 stress loop's marginal cycles/iter
//     with SFIP off vs enforcing, isolating the per-check hot-path cost
//     (CostModel.SfipCheck per trap-origin call).
package bench

import (
	"fmt"
	"io"
	"strings"

	"k23/internal/apps"
	"k23/internal/core"
	"k23/internal/interpose"
	"k23/internal/interpose/variants"
	"k23/internal/obsv"
	"k23/internal/pitfalls"
	"k23/internal/sfip"
)

// SfipCell is one pitfall-trip matrix cell: what training saw and what
// enforcement caught.
type SfipCell struct {
	Pitfall    string
	Interposer string
	// Escapes counts the training run's audit-ledgered escapes (summed
	// over the PoC's worlds).
	Escapes uint64
	// Origins and Edges size the learned policies (summed over worlds).
	Origins int
	Edges   int
	// Trips counts enforcement-pass policy violations; Denied counts the
	// calls refused with EPERM.
	Trips  uint64
	Denied uint64
}

// Tripped reports whether enforcement caught anything.
func (c *SfipCell) Tripped() bool { return c.Trips > 0 }

// SfipPitfallMatrix runs the two-pass pitfall-trip evaluation over the
// Table 3 columns. Worlds correspond across passes by creation order
// (the PoCs are deterministic), so each enforcement-pass world runs
// under the policy its own training-pass twin learned.
func SfipPitfallMatrix() ([]SfipCell, error) {
	specs := variants.Table3Columns()
	type cellKey struct{ pitfall, interposer string }

	learned, err := pitfalls.ObservedMatrix(specs,
		func(pitfalls.PoC, variants.Spec, int) obsv.Options {
			return obsv.Options{Audit: true, SfipLearn: true}
		})
	if err != nil {
		return nil, fmt.Errorf("bench: sfip training pass: %w", err)
	}

	policies := make(map[cellKey][]*sfip.Policy, len(learned))
	cells := make([]SfipCell, 0, len(learned))
	for i := range learned {
		c := &learned[i]
		key := cellKey{c.Pitfall, c.Interposer}
		cell := SfipCell{Pitfall: c.Pitfall, Interposer: c.Interposer}
		for _, o := range c.Observers {
			if o == nil {
				policies[key] = append(policies[key], nil)
				continue
			}
			s := o.Snapshot()
			policies[key] = append(policies[key], s.SfipPolicy)
			if s.Audit != nil {
				cell.Escapes += s.Audit.Escaped()
			}
			if s.SfipPolicy != nil {
				cell.Origins += s.SfipPolicy.Origins()
				cell.Edges += s.SfipPolicy.Edges()
			}
		}
		cells = append(cells, cell)
	}

	enforced, err := pitfalls.ObservedMatrix(specs,
		func(poc pitfalls.PoC, spec variants.Spec, world int) obsv.Options {
			ps := policies[cellKey{poc.ID, spec.Name}]
			if world >= len(ps) || ps[world] == nil {
				return obsv.Options{}
			}
			return obsv.Options{SfipPolicy: ps[world], SfipMode: sfip.ModeEnforce}
		})
	if err != nil {
		return nil, fmt.Errorf("bench: sfip enforcement pass: %w", err)
	}
	if len(enforced) != len(cells) {
		return nil, fmt.Errorf("bench: sfip pass mismatch: %d training cells, %d enforcement cells",
			len(cells), len(enforced))
	}
	for i := range enforced {
		for _, o := range enforced[i].Observers {
			if o == nil {
				continue
			}
			if rep := o.Snapshot().Sfip; rep != nil {
				cells[i].Trips += rep.Violations
				cells[i].Denied += rep.Denied
			}
		}
	}
	return cells, nil
}

// SfipAppRow is one false-positive-table row: a Table 2 application
// self-trained and then enforced.
type SfipAppRow struct {
	App     string
	Origins int
	Edges   int
	// Checked counts enforcement-run policy checks; Violations counts
	// false positives (the criterion is zero).
	Checked    uint64
	Violations uint64
}

// sfipVariant is the mechanism column the app table and the determinism
// battery train under: K23's full configuration, whose complete
// coverage is what makes zero false positives achievable.
const sfipVariant = "k23-ultra+"

// sfipAppSnapshot runs one Table 2 workload to completion under spec
// with the given collectors installed at production start, and returns
// the observer snapshot.
func sfipAppSnapshot(spec variants.Spec, wl sfipWorkload, oo obsv.Options) (*obsv.Snapshot, error) {
	w, err := macroWorld()
	if err != nil {
		return nil, err
	}
	logPath := ""
	if spec.NeedsOfflineLog {
		cfg := MacroConfig{Name: wl.name, Path: wl.path, Argv: wl.argv, Sqlite: !wl.server}
		if logPath, err = offlineFor(w, cfg); err != nil {
			return nil, fmt.Errorf("bench: sfip offline %s: %w", wl.name, err)
		}
	}
	o := obsv.New(oo)
	o.Install(w.K)
	l := spec.New(interpose.Config{}, logPath)
	p, err := l.Launch(w, wl.path, wl.argv, nil)
	if err != nil {
		return nil, err
	}
	if wl.server {
		req := make([]byte, apps.RequestSize)
		port := apps.BasePort + p.PID
		injected := false
		for i := 0; i < 5000 && !injected; i++ {
			w.K.Run(10_000)
			if err := w.K.InjectConn(port, req, wl.requests, nil); err == nil {
				injected = true
			}
		}
		if !injected {
			return nil, fmt.Errorf("bench: sfip %s never listened", wl.name)
		}
	}
	if err := w.K.RunUntilExit(p, 3_000_000_000); err != nil {
		return nil, err
	}
	if p.Exit.Signal != 0 {
		return nil, fmt.Errorf("bench: sfip %s died: %s", wl.name, p.Exit)
	}
	return o.Snapshot(), nil
}

// sfipWorkload narrows a table2Workloads entry.
type sfipWorkload struct {
	name     string
	path     string
	argv     []string
	server   bool
	requests int
}

// sfipWorkloads returns the nine Table 2 applications.
func sfipWorkloads() []sfipWorkload {
	out := make([]sfipWorkload, 0, len(table2Workloads))
	for _, wl := range table2Workloads {
		out = append(out, sfipWorkload{wl.name, wl.path, wl.argv, wl.server, wl.requests})
	}
	return out
}

// SfipAppTable self-trains and then enforces every Table 2 application
// under k23-ultra+. A non-zero violation count is a learner or
// enforcer defect, not an application property: training and
// enforcement see identical runs.
func SfipAppTable() ([]SfipAppRow, error) {
	spec, ok := variants.ByName(sfipVariant)
	if !ok {
		return nil, fmt.Errorf("bench: unknown variant %s", sfipVariant)
	}
	var rows []SfipAppRow
	for _, wl := range sfipWorkloads() {
		train, err := sfipAppSnapshot(spec, wl, obsv.Options{SfipLearn: true})
		if err != nil {
			return nil, fmt.Errorf("bench: sfip train %s: %w", wl.name, err)
		}
		policy := train.SfipPolicy
		enforce, err := sfipAppSnapshot(spec, wl, obsv.Options{SfipPolicy: policy, SfipMode: sfip.ModeEnforce})
		if err != nil {
			return nil, fmt.Errorf("bench: sfip enforce %s: %w", wl.name, err)
		}
		row := SfipAppRow{App: wl.name, Origins: policy.Origins(), Edges: policy.Edges()}
		if enforce.Sfip != nil {
			row.Checked = enforce.Sfip.Checked
			row.Violations = enforce.Sfip.Violations
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// SfipMicroRow is one hot-path cost row: the micro loop's marginal
// cycles/iter with SFIP absent vs enforcing.
type SfipMicroRow struct {
	Variant string
	Off     float64
	Enforce float64
	// Delta is the per-iteration enforcement cost in cycles.
	Delta float64
}

// sfipTrainMicro learns a complete policy for the micro workload under
// spec (LearnAll: the overhead measurement wants a violation-free
// enforcement path, not a security verdict).
func sfipTrainMicro(spec variants.Spec) (*sfip.Policy, error) {
	w := microWorld()
	logPath := ""
	if spec.NeedsOfflineLog {
		off := &core.Offline{LogDir: "/var/k23/logs"}
		run, err := off.Start(w, MicroPath, []string{"micro", "50"}, nil)
		if err != nil {
			return nil, err
		}
		if err := w.K.RunUntilExit(run.Process(), 500_000_000); err != nil {
			return nil, err
		}
		if _, err := run.Finish(); err != nil {
			return nil, err
		}
		logPath = off.LogPath("micro")
	}
	o := obsv.New(obsv.Options{SfipLearn: true})
	o.Learner.LearnAll = true
	o.Install(w.K)
	l := spec.New(interpose.Config{}, logPath)
	// Train at both measurement sizes so every transition either run
	// exercises is in the policy.
	if _, err := runMicroOnce(w, l, microN1); err != nil {
		return nil, err
	}
	if _, err := runMicroOnce(w, l, microN2); err != nil {
		return nil, err
	}
	return o.Snapshot().SfipPolicy, nil
}

// sfipMicroSlope measures the micro loop's marginal cycles/iter with an
// enforcer installed bare on the kernel (no event hook, so the delta vs
// the plain slope isolates the SFIP check itself).
func sfipMicroSlope(spec variants.Spec, policy *sfip.Policy, mode sfip.Mode) (float64, error) {
	w := microWorld()
	logPath := ""
	if spec.NeedsOfflineLog {
		off := &core.Offline{LogDir: "/var/k23/logs"}
		run, err := off.Start(w, MicroPath, []string{"micro", "50"}, nil)
		if err != nil {
			return 0, err
		}
		if err := w.K.RunUntilExit(run.Process(), 500_000_000); err != nil {
			return 0, err
		}
		if _, err := run.Finish(); err != nil {
			return 0, err
		}
		logPath = off.LogPath("micro")
	}
	// Installed after the offline phase: the controlled environment is
	// not policed.
	w.K.Sfip = sfip.NewEnforcer(policy, mode)
	l := spec.New(interpose.Config{}, logPath)
	c1, err := runMicroOnce(w, l, microN1)
	if err != nil {
		return 0, err
	}
	c2, err := runMicroOnce(w, l, microN2)
	if err != nil {
		return 0, err
	}
	return float64(c2-c1) / float64(microN2-microN1), nil
}

// SfipMicroTable measures the enforcement hot-path cost for every
// Table 3 column.
func SfipMicroTable() ([]SfipMicroRow, error) {
	var rows []SfipMicroRow
	for _, spec := range variants.Table3Columns() {
		off, err := MicroSlope(spec)
		if err != nil {
			return nil, fmt.Errorf("bench: sfip micro %s: %w", spec.Name, err)
		}
		policy, err := sfipTrainMicro(spec)
		if err != nil {
			return nil, fmt.Errorf("bench: sfip micro train %s: %w", spec.Name, err)
		}
		enf, err := sfipMicroSlope(spec, policy, sfip.ModeEnforce)
		if err != nil {
			return nil, fmt.Errorf("bench: sfip micro enforce %s: %w", spec.Name, err)
		}
		rows = append(rows, SfipMicroRow{Variant: spec.Name, Off: off, Enforce: enf, Delta: enf - off})
	}
	return rows, nil
}

// WriteSfipTable runs all three SFIP measurements and writes the
// golden-comparable report.
func WriteSfipTable(w io.Writer) error {
	cells, err := SfipPitfallMatrix()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "sfip pitfall-trip matrix (train on audit-classified runs, enforce the learned policies)\n")
	missed := 0
	for i := range cells {
		c := &cells[i]
		fmt.Fprintf(w, "[%s/%s] escapes=%d origins=%d edges=%d trips=%d denied=%d\n",
			c.Pitfall, c.Interposer, c.Escapes, c.Origins, c.Edges, c.Trips, c.Denied)
		if c.Escapes > 0 && !c.Tripped() {
			missed++
		}
	}
	if missed == 0 {
		fmt.Fprintf(w, "criterion: every cell with training escapes trips under enforcement: PASS\n")
	} else {
		fmt.Fprintf(w, "criterion: %d cell(s) escaped in training without tripping enforcement: FAIL\n", missed)
	}

	rows, err := SfipAppTable()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\nsfip false positives (nine self-trained applications under %s)\n", sfipVariant)
	var fps uint64
	for _, r := range rows {
		fmt.Fprintf(w, "[%s] origins=%d edges=%d checked=%d violations=%d\n",
			r.App, r.Origins, r.Edges, r.Checked, r.Violations)
		fps += r.Violations
	}
	fmt.Fprintf(w, "false-positive total: %d\n", fps)

	micro, err := SfipMicroTable()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\nsfip micro overhead (marginal cycles/iter, virtual clock)\n")
	for _, r := range micro {
		fmt.Fprintf(w, "[%s] off=%.1f enforce=%.1f delta=%.1f\n", r.Variant, r.Off, r.Enforce, r.Delta)
	}
	return nil
}

// SfipTable is WriteSfipTable into a string, for benchtab and the
// golden test.
func SfipTable() (string, error) {
	var b strings.Builder
	if err := WriteSfipTable(&b); err != nil {
		return "", err
	}
	return b.String(), nil
}
