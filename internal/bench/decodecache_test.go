package bench

import "testing"

// TestDecodeCacheParity: cached and uncached runs retire exactly the
// same number of guest instructions (the cache is invisible to the
// guest), the uncached run records no cache activity, and the hot loops
// hit almost always.
func TestDecodeCacheParity(t *testing.T) {
	t.Run("micro", func(t *testing.T) {
		on, err := MeasureDecodeCacheMicro(300, false)
		if err != nil {
			t.Fatal(err)
		}
		off, err := MeasureDecodeCacheMicro(300, true)
		if err != nil {
			t.Fatal(err)
		}
		checkParity(t, on, off)
	})
	t.Run("redis", func(t *testing.T) {
		on, err := MeasureDecodeCacheMacro(10, false)
		if err != nil {
			t.Fatal(err)
		}
		off, err := MeasureDecodeCacheMacro(10, true)
		if err != nil {
			t.Fatal(err)
		}
		checkParity(t, on, off)
	})
}

func checkParity(t *testing.T, on, off DecodeCacheRun) {
	t.Helper()
	if on.Steps != off.Steps {
		t.Errorf("retired instructions differ: cached=%d uncached=%d", on.Steps, off.Steps)
	}
	if off.Stats.Hits != 0 || off.Stats.Misses != 0 {
		t.Errorf("uncached run recorded cache activity: %+v", off.Stats)
	}
	if hr := on.Stats.HitRate(); hr < 0.90 {
		t.Errorf("hit rate = %.3f, want >= 0.90 (%+v over %d steps)", hr, on.Stats, on.Steps)
	}
}
