package bench

import (
	"fmt"
	"os"
	"testing"
)

// Calibration printers: run with K23_CALIBRATE=1 (see EXPERIMENTS.md);
// the regular test suite exercises the same code through smaller checks.
func TestCalibrationPrintTable5(t *testing.T) {
	if os.Getenv("K23_CALIBRATE") == "" {
		t.Skip("set K23_CALIBRATE=1 to run the full Table 5 calibration")
	}
	rows, err := Table5()
	if err != nil {
		t.Fatal(err)
	}
	fmt.Print(FormatTable5(rows))
}
