package bench

import (
	"fmt"
	"strings"

	"k23/internal/apps"
	"k23/internal/asm"
	"k23/internal/core"
	"k23/internal/cpu"
	"k23/internal/disasm"
	"k23/internal/interpose"
	"k23/internal/interpose/variants"
	"k23/internal/kernel"
)

// Figure1 regenerates the content of the paper's Figure 1: a code region
// containing genuine SYSCALL instructions, a partial instruction whose
// immediate embeds the SYSCALL opcode, and embedded data resembling a
// SYSCALL — annotated with what linear-sweep disassembly and a raw byte
// scan each report, versus ground truth.
func Figure1() string {
	b := asm.NewBuilder("/fig1/demo")
	t := b.Text()
	t.Label("_start")
	t.MovImm32(cpu.RAX, 39)
	t.Label("real_site")
	t.Syscall() // genuine
	t.Label("partial")
	// MOVIMM whose immediate bytes contain 0F 05: a partial instruction.
	t.Raw(0xB8, 0x00, 0x0F, 0x05, 0x90, 0x90, 0x90, 0x90, 0x90, 0x90)
	t.Jmp(".after")
	t.Label("data_blob")
	t.Raw(0xAB, 0x0F, 0x05, 0xAB) // jump-table bytes resembling SYSCALL
	t.Label(".after")
	t.Label("real_site2")
	t.Sysenter() // genuine legacy encoding
	t.Ret()
	im := b.MustBuild()
	sec, _ := im.Section(".text")

	sweep := disasm.LinearSweep(sec.Data, 0)
	bytescan := disasm.FindByteSites(sec.Data, 0)
	var truth []uint64
	truth = append(truth, im.TrueSites...)
	_, mis, overlooked := disasm.Diff(sweep.Sites, truth)

	var out strings.Builder
	out.WriteString("Figure 1 — anatomy of syscall-instruction misidentification\n\n")
	annotate := func(off uint64) string {
		var tags []string
		for _, a := range truth {
			if a == off {
				tags = append(tags, "GENUINE")
			}
		}
		for _, s := range sweep.Sites {
			if s.Addr == off {
				tags = append(tags, "found-by-linear-sweep")
			}
		}
		for _, s := range bytescan {
			if s.Addr == off {
				tags = append(tags, "matches-byte-pattern")
			}
		}
		return strings.Join(tags, ", ")
	}
	interesting := map[string]uint64{
		"real syscall":            im.Symbols["real_site"],
		"partial instruction+2":   im.Symbols["partial"] + 2,
		"embedded data+1":         im.Symbols["data_blob"] + 1,
		"real sysenter":           im.Symbols["real_site2"],
	}
	for _, name := range []string{"real syscall", "partial instruction+2", "embedded data+1", "real sysenter"} {
		off := interesting[name]
		fmt.Fprintf(&out, "  offset %#04x  %-22s -> %s\n", off, name, annotate(off))
	}
	fmt.Fprintf(&out, "\n  linear sweep: %d sites (%d misidentified), %d genuine sites overlooked, %d resyncs\n",
		len(sweep.Sites), len(mis), len(overlooked), sweep.Resyncs)
	fmt.Fprintf(&out, "  byte scan over-approximation: %d candidate sites vs %d genuine\n",
		len(bytescan), len(truth))
	out.WriteString("\n  zpoline rewrites what the sweep reports (P3a); lazypoline rewrites\n")
	out.WriteString("  whatever traps, including hijacked data (P3b); K23 rewrites only\n")
	out.WriteString("  offline-validated sites.\n")
	return out.String()
}

// Figure2 regenerates the offline-phase flow of the paper's Figure 2 as
// an event trace: kernel trap -> libLogger -> log entry -> original
// syscall -> return.
func Figure2() (string, error) {
	w, err := macroWorld()
	if err != nil {
		return "", err
	}
	var out strings.Builder
	out.WriteString("Figure 2 — offline phase (libLogger over SUD), first traps of `ls`:\n\n")
	shown := 0
	w.K.EventHook = func(ev kernel.Event) {
		if ev.Kind == kernel.EvSudSigsys && shown < 4 {
			shown++
			fmt.Fprintf(&out, "  (1) syscall %d invoked at site %#x\n", ev.Num, ev.Site)
			fmt.Fprintf(&out, "  (2) kernel traps it -> SIGSYS -> libLogger handler\n")
			fmt.Fprintf(&out, "  (3) libLogger resolves the site via /proc/<pid>/maps and logs (region, offset)\n")
			fmt.Fprintf(&out, "  (4) libLogger re-executes the call, returns its result, resumes the app\n\n")
		}
	}
	off := &core.Offline{LogDir: "/var/k23/logs"}
	run, err := off.Start(w, apps.LsPath, []string{"ls", "/data"}, nil)
	if err != nil {
		return "", err
	}
	if err := w.K.RunUntilExit(run.Process(), 500_000_000); err != nil {
		return "", err
	}
	n, err := run.Finish()
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&out, "  ... %d unique (region, offset) pairs logged in total\n", n)
	return out.String(), nil
}

// Figure4 regenerates the online-phase flow of the paper's Figure 4 as a
// phase-annotated trace of `ls` under K23.
func Figure4() (string, error) {
	w, err := macroWorld()
	if err != nil {
		return "", err
	}
	// Offline first, so the single rewriting step has sites.
	off := &core.Offline{LogDir: "/var/k23/logs"}
	run, err := off.Start(w, apps.LsPath, []string{"ls", "/data"}, nil)
	if err != nil {
		return "", err
	}
	if err := w.K.RunUntilExit(run.Process(), 500_000_000); err != nil {
		return "", err
	}
	if _, err := run.Finish(); err != nil {
		return "", err
	}

	var ptraced, rewritten, sudFallback int
	cfg := interpose.Config{
		Hook: func(c *interpose.Call) (uint64, bool) {
			switch c.Mechanism {
			case interpose.MechPtrace:
				ptraced++
			case interpose.MechRewrite:
				rewritten++
			case interpose.MechSUD:
				sudFallback++
			}
			return 0, false
		},
	}
	spec, _ := variants.ByName("k23-ultra+")
	k23 := spec.New(cfg, off.LogPath("ls")).(*core.K23)
	p, err := k23.Launch(w, apps.LsPath, []string{"ls", "/data"}, nil)
	if err != nil {
		return "", err
	}
	if err := w.K.RunUntilExit(p, 500_000_000); err != nil {
		return "", err
	}
	st := k23.Stats(p)

	var out strings.Builder
	out.WriteString("Figure 4 — online phase of `ls` under K23:\n\n")
	fmt.Fprintf(&out, "  [ptracer: interposition]  %d syscalls before/during library loading\n", k23.StartupSyscalls(p))
	fmt.Fprintf(&out, "  [handoff]                 fake syscalls %d/%d transfer state; ptracer detaches\n",
		core.FakeSyscallHandoff, core.FakeSyscallDetach)
	fmt.Fprintf(&out, "  [single rewriting step]   %d offline-validated sites -> callq *%%rax\n", st.Sites)
	fmt.Fprintf(&out, "  [libK23: interposition]   %d calls via rewritten trampoline path\n", st.Rewritten)
	fmt.Fprintf(&out, "  [SUD fallback]            %d calls from sites the offline phase missed\n", st.SUD)
	fmt.Fprintf(&out, "\n  exhaustive: every mechanism reaches the same interposition code; exit: %s\n", p.Exit)
	_ = ptraced
	_ = rewritten
	_ = sudFallback
	return out.String(), nil
}

// ClaimStartup measures the §6.1 claim: ls issues over 100 system calls
// before the interposition library loads.
func ClaimStartup() (string, error) {
	w, err := macroWorld()
	if err != nil {
		return "", err
	}
	k23 := core.New(interpose.Config{}, "")
	p, err := k23.Launch(w, apps.LsPath, []string{"ls", "/data"}, nil)
	if err != nil {
		return "", err
	}
	if err := w.K.RunUntilExit(p, 500_000_000); err != nil {
		return "", err
	}
	n := k23.StartupSyscalls(p)
	return fmt.Sprintf("ls issued %d system calls during startup, before any LD_PRELOAD\n"+
		"interposition library initialized (paper §6.1: over 100).\n", n), nil
}

// ClaimP4b compares the NULL-execution-check memory footprint: zpoline's
// address-space bitmap versus K23's robin-hood set.
func ClaimP4b() (string, error) {
	run := func(name string) (*interpose.Stats, error) {
		w, err := macroWorld()
		if err != nil {
			return nil, err
		}
		spec, _ := variants.ByName(name)
		logPath := ""
		if spec.NeedsOfflineLog {
			off := &core.Offline{LogDir: "/var/k23/logs"}
			r, err := off.Start(w, apps.LsPath, []string{"ls", "/data"}, nil)
			if err != nil {
				return nil, err
			}
			if err := w.K.RunUntilExit(r.Process(), 500_000_000); err != nil {
				return nil, err
			}
			if _, err := r.Finish(); err != nil {
				return nil, err
			}
			logPath = off.LogPath("ls")
		}
		l := spec.New(interpose.Config{}, logPath)
		p, err := l.Launch(w, apps.LsPath, []string{"ls", "/data"}, nil)
		if err != nil {
			return nil, err
		}
		if err := w.K.RunUntilExit(p, 500_000_000); err != nil {
			return nil, err
		}
		return l.Stats(p), nil
	}
	zp, err := run("zpoline-ultra")
	if err != nil {
		return "", err
	}
	k, err := run("k23-ultra")
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("NULL-execution-check memory per process (P4b, `ls`):\n"+
		"  zpoline bitmap:  %d bytes reserved virtual, %d bytes resident\n"+
		"  K23 robin set:   %d bytes reserved virtual, %d bytes resident (%d sites)\n",
		zp.MemReservedBytes, zp.MemResidentBytes,
		k.MemReservedBytes, k.MemResidentBytes, k.Sites), nil
}
