package bench

import (
	"fmt"
	"strings"
	"time"

	"k23/internal/core"
	"k23/internal/interpose"
	"k23/internal/interpose/variants"
	"k23/internal/obsv"
)

// SidecarRow is the per-variant observability summary printed next to
// the benchmark tables: one instrumented representative run per
// variant, broken down by interposition path.
type SidecarRow struct {
	Variant string
	Snap    *obsv.MetricsSnapshot
}

// sidecarIters is the loop count of the sidecar's representative run —
// large enough that per-mechanism counts dominate startup noise, small
// enough to stay instant.
const sidecarIters = 400

// MetricsSidecar runs the microbenchmark once per variant with the
// metrics collector installed and returns the per-variant snapshots.
// The observer attaches after any offline phase, so the sidecar
// describes the interposed online run only.
func MetricsSidecar(names []string) ([]SidecarRow, error) {
	rows := make([]SidecarRow, 0, len(names))
	for _, name := range names {
		spec, ok := variants.ByName(name)
		if !ok {
			return nil, fmt.Errorf("bench: unknown variant %s", name)
		}
		w := microWorld()
		logPath := ""
		if spec.NeedsOfflineLog {
			off := &core.Offline{LogDir: "/var/k23/logs"}
			run, err := off.Start(w, MicroPath, []string{"micro", "50"}, nil)
			if err != nil {
				return nil, err
			}
			if err := w.K.RunUntilExit(run.Process(), 500_000_000); err != nil {
				return nil, err
			}
			if _, err := run.Finish(); err != nil {
				return nil, err
			}
			logPath = off.LogPath("micro")
		}
		obs := obsv.New(obsv.Options{Metrics: true})
		obs.Install(w.K)
		l := spec.New(interpose.Config{}, logPath)
		if _, err := runMicroOnce(w, l, sidecarIters); err != nil {
			return nil, fmt.Errorf("bench: sidecar %s: %w", name, err)
		}
		rows = append(rows, SidecarRow{Variant: name, Snap: obs.Snapshot().Metrics})
	}
	return rows, nil
}

// ObsOverheadRow is one configuration of the observability overhead
// claim: the Table 2 micro workload under one interposer with a given
// collector set, reporting simulator throughput.
type ObsOverheadRow struct {
	Config     string
	Insts      uint64
	Wall       time.Duration
	Regression float64 // wall-time ratio vs the no-observer run
}

// obsOverheadIters is the micro loop count for the overhead claim —
// long enough that the interposed syscall path dominates setup.
const obsOverheadIters = 20000

// obsOverheadRounds interleaves the configs so slow host drift hits
// every config equally; min-of-rounds then drops scheduler noise.
const obsOverheadRounds = 5

// obsOverheadOnce runs the micro workload once under spec with opts
// (installEmpty additionally installs an all-off observer, proving the
// disabled path costs nothing) and returns instructions retired and the
// wall time of the instrumented run.
func obsOverheadOnce(spec variants.Spec, opts obsv.Options, installEmpty bool) (uint64, time.Duration, error) {
	w := microWorld()
	logPath := ""
	if spec.NeedsOfflineLog {
		off := &core.Offline{LogDir: "/var/k23/logs"}
		run, err := off.Start(w, MicroPath, []string{"micro", "50"}, nil)
		if err != nil {
			return 0, 0, err
		}
		if err := w.K.RunUntilExit(run.Process(), 500_000_000); err != nil {
			return 0, 0, err
		}
		if _, err := run.Finish(); err != nil {
			return 0, 0, err
		}
		logPath = off.LogPath("micro")
	}
	if opts.Enabled() || installEmpty {
		obsv.New(opts).Install(w.K)
	}
	l := spec.New(interpose.Config{}, logPath)
	start := time.Now()
	p, err := l.Launch(w, MicroPath, []string{"micro", fmt.Sprintf("%d", obsOverheadIters)}, nil)
	if err != nil {
		return 0, 0, err
	}
	if err := w.K.RunUntilExit(p, 2_000_000_000); err != nil {
		return 0, 0, err
	}
	wall := time.Since(start)
	var insts uint64
	for _, t := range p.Threads {
		insts += t.Core.Insts
	}
	return insts, wall, nil
}

// obsOverheadProbe is the probe program the overhead claim's probes row
// runs — the hot path pays one match per syscall exit plus a histogram
// bump, and the disabled path stays the usual single nil-check.
const obsOverheadProbe = `syscall:*:exit { hist(cycles) by (mech) }`

// MeasureObsOverhead measures the wall-clock cost of each collector set
// on the Table 2 micro workload under variantName (EXPERIMENTS.md E15).
func MeasureObsOverhead(variantName string) ([]ObsOverheadRow, error) {
	spec, ok := variants.ByName(variantName)
	if !ok {
		return nil, fmt.Errorf("bench: unknown variant %s", variantName)
	}
	probes, err := obsv.CompileProbes(obsOverheadProbe)
	if err != nil {
		return nil, err
	}
	configs := []struct {
		name         string
		opts         obsv.Options
		installEmpty bool
	}{
		{"no observer", obsv.Options{}, false},
		{"observer, all off", obsv.Options{}, true},
		{"metrics", obsv.Options{Metrics: true}, false},
		{"audit", obsv.Options{Audit: true}, false},
		{"spans", obsv.Options{Spans: true}, false},
		{"probes", obsv.Options{Probes: probes, ProbeMech: variantName}, false},
		{"trace[512]+metrics", obsv.Options{Trace: true, RingSize: 512, Metrics: true}, false},
		{"trace+metrics", obsv.Options{Trace: true, Metrics: true}, false},
		{"trace+metrics+profile", obsv.Options{Trace: true, Metrics: true, ProfileEvery: obsv.DefaultProfileEvery}, false},
	}
	rows := make([]ObsOverheadRow, len(configs))
	for round := 0; round < obsOverheadRounds; round++ {
		for i, c := range configs {
			insts, wall, err := obsOverheadOnce(spec, c.opts, c.installEmpty)
			if err != nil {
				return nil, fmt.Errorf("bench: obsoverhead %s: %w", c.name, err)
			}
			if round == 0 || wall < rows[i].Wall {
				rows[i] = ObsOverheadRow{Config: c.name, Insts: insts, Wall: wall}
			}
		}
	}
	base := rows[0].Wall
	for i := range rows {
		rows[i].Regression = float64(rows[i].Wall)/float64(base) - 1
	}
	return rows, nil
}

// FormatObsOverhead renders the overhead claim table.
func FormatObsOverhead(variantName string, rows []ObsOverheadRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "variant: %s, micro loop x%d, best-of-5 interleaved wall time\n", variantName, obsOverheadIters)
	fmt.Fprintf(&b, "%-24s %-12s %-12s %-10s %s\n", "Config", "insts", "wall", "Minsts/s", "overhead")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-24s %-12d %-12s %-10.1f %+.1f%%\n",
			r.Config, r.Insts, r.Wall.Round(time.Microsecond),
			float64(r.Insts)/r.Wall.Seconds()/1e6, r.Regression*100)
	}
	return b.String()
}

// FormatMetricsSidecar renders the sidecar: syscall volume, error rate,
// mean per-call cost, per-mechanism attribution, decode-cache hit rate.
func FormatMetricsSidecar(rows []SidecarRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s %-10s %-8s %-12s %-10s %s\n",
		"Variant", "syscalls", "errors", "mean-cycles", "hit-rate", "by-mechanism")
	for _, r := range rows {
		var calls, errs uint64
		var hist obsv.Hist
		for i := range r.Snap.Syscalls {
			s := &r.Snap.Syscalls[i]
			calls += s.Count
			errs += s.Errors
			hist.Merge(&s.Hist)
		}
		mechs := make([]string, 0, len(r.Snap.Mechanisms))
		for _, m := range r.Snap.Mechanisms {
			mechs = append(mechs, fmt.Sprintf("%s=%d", m.Mechanism, m.Count))
		}
		mech := strings.Join(mechs, " ")
		if mech == "" {
			mech = "-"
		}
		fmt.Fprintf(&b, "%-22s %-10d %-8d %-12.1f %-10s %s\n",
			r.Variant, calls, errs, hist.Mean(),
			fmt.Sprintf("%.1f%%", r.Snap.DecodeCache.HitRate()*100), mech)
	}
	return b.String()
}
