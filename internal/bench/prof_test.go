package bench

import (
	"testing"
	"time"

	"k23/internal/interpose/variants"
)

func TestProfileOneConfig(t *testing.T) {
	cfg := MacroConfigs()[0] // nginx 1w 0KB
	for _, name := range []string{"native", "sud", "k23-ultra"} {
		spec, _ := variants.ByName(name)
		start := time.Now()
		c, err := cyclesPerRequest(spec, cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("%s: %.0f cycles/req in %v", name, c, time.Since(start))
	}
}
