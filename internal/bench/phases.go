package bench

import (
	"fmt"
	"strings"

	"k23/internal/core"
	"k23/internal/interpose"
	"k23/internal/interpose/variants"
	"k23/internal/obsv"
	"k23/internal/span"
)

// PhaseColumns are the span-slice phases the decomposition reports, in
// lifecycle order. "other" (dispatch cost charged outside any span —
// hostcall entry/exit, trampolines, signal-frame setup the spans cannot
// see) is computed as the residual against the total slope.
var PhaseColumns = []string{"trap", "signal", "handler", "hook", "emulate", "forward", "kernel"}

// PhasesRow decomposes one variant's Table 5 per-iteration cost into
// span-attributed phase self-cycles plus a dispatch residual.
type PhasesRow struct {
	Name string
	// Total is the per-iteration marginal cycle cost — the same slope
	// Table 5 reports, so the columns add up to the paper's numbers.
	Total float64
	// Phases maps each PhaseColumns entry to its per-iteration
	// self-cycle slope.
	Phases map[string]float64
	// Other is Total minus the attributed phases: dispatch work charged
	// to the thread outside any span slice.
	Other float64
}

// measurePhasesOnce runs the micro workload for n iterations in a fresh
// world under spec with a span observer attached at the production
// boundary, returning total main-thread cycles and per-phase attributed
// self-cycles. The span observer rides side-streams, so the cycle
// numbers are identical to an unobserved run (the E15 non-perturbation
// property); the slope over two sizes then cancels launch and offline
// fixed costs exactly as MicroSlope does.
func measurePhasesOnce(spec variants.Spec, n int) (uint64, map[string]uint64, error) {
	w := microWorld()
	logPath := ""
	if spec.NeedsOfflineLog {
		off := &core.Offline{LogDir: "/var/k23/logs"}
		run, err := off.Start(w, MicroPath, []string{"micro", "50"}, nil)
		if err != nil {
			return 0, nil, err
		}
		if err := w.K.RunUntilExit(run.Process(), 500_000_000); err != nil {
			return 0, nil, err
		}
		if _, err := run.Finish(); err != nil {
			return 0, nil, err
		}
		logPath = off.LogPath("micro")
	}
	obs := obsv.New(obsv.Options{Spans: true})
	obs.Install(w.K)
	l := spec.New(interpose.Config{}, logPath)
	total, err := runMicroOnce(w, l, n)
	if err != nil {
		return 0, nil, err
	}
	rep := span.Analyze(obs.Snapshot().Spans...)
	attributed := make(map[string]uint64)
	for _, pc := range rep.Phases {
		attributed[pc.Phase] += pc.Cycles
	}
	return total, attributed, nil
}

// MeasurePhases decomposes the Table 5 microbenchmark cost of every
// variant into lifecycle phases (E20). Each variant runs at two sizes;
// per-phase slopes attribute the marginal per-iteration cost, and the
// residual against the total slope is the un-spanned dispatch cost.
func MeasurePhases() ([]PhasesRow, error) {
	names := append([]string{"native"}, Table5Variants()...)
	rows := make([]PhasesRow, 0, len(names))
	for _, name := range names {
		spec, ok := variants.ByName(name)
		if !ok {
			return nil, fmt.Errorf("bench: unknown variant %s", name)
		}
		t1, a1, err := measurePhasesOnce(spec, microN1)
		if err != nil {
			return nil, fmt.Errorf("bench: phases %s: %w", name, err)
		}
		t2, a2, err := measurePhasesOnce(spec, microN2)
		if err != nil {
			return nil, fmt.Errorf("bench: phases %s: %w", name, err)
		}
		d := float64(microN2 - microN1)
		row := PhasesRow{
			Name:   name,
			Total:  float64(t2-t1) / d,
			Phases: make(map[string]float64, len(PhaseColumns)),
		}
		var attributed float64
		for _, ph := range PhaseColumns {
			v := (float64(a2[ph]) - float64(a1[ph])) / d
			row.Phases[ph] = v
			attributed += v
		}
		row.Other = row.Total - attributed
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatPhases renders the decomposition: one variant per row, one
// lifecycle phase per column, all in per-iteration cycles. The "total"
// column is Table 5's cycles/iter, so each row is that table's number
// split by where the cycles actually went.
func FormatPhases(rows []PhasesRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s", "Interposer")
	for _, ph := range PhaseColumns {
		fmt.Fprintf(&b, " %9s", ph)
	}
	fmt.Fprintf(&b, " %9s %9s\n", "other", "total")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-22s", r.Name)
		for _, ph := range PhaseColumns {
			fmt.Fprintf(&b, " %9.1f", r.Phases[ph])
		}
		fmt.Fprintf(&b, " %9.1f %9.1f\n", r.Other, r.Total)
	}
	return b.String()
}
