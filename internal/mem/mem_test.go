package mem

import (
	"errors"
	"testing"
	"testing/quick"
)

func mustMap(t *testing.T, a *AddressSpace, addr, length uint64, perm Perm, name string) {
	t.Helper()
	if err := a.Map(addr, length, perm, name); err != nil {
		t.Fatalf("Map(%#x, %d): %v", addr, length, err)
	}
}

func TestMapLoadStore(t *testing.T) {
	a := NewAddressSpace()
	mustMap(t, a, 0x1000, 2*PageSize, PermRW, "heap")

	want := []byte{1, 2, 3, 4, 5}
	if err := a.Store(0x1ffe, want, 0); err != nil {
		t.Fatalf("cross-page store: %v", err)
	}
	got, err := a.Load(0x1ffe, len(want), 0)
	if err != nil {
		t.Fatalf("cross-page load: %v", err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("byte %d = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestUnmappedFault(t *testing.T) {
	a := NewAddressSpace()
	_, err := a.Load(0x5000, 1, 0)
	var f *Fault
	if !errors.As(err, &f) {
		t.Fatalf("expected *Fault, got %v", err)
	}
	if f.Cause != CauseUnmapped || f.Access != AccessRead || f.Addr != 0x5000 {
		t.Fatalf("fault = %+v", f)
	}
}

func TestPermFaults(t *testing.T) {
	a := NewAddressSpace()
	mustMap(t, a, 0x1000, PageSize, PermRead, "ro")

	if err := a.Store(0x1000, []byte{1}, 0); err == nil {
		t.Fatal("store to read-only page succeeded")
	} else if f := err.(*Fault); f.Cause != CausePerm || f.Access != AccessWrite {
		t.Fatalf("fault = %+v", f)
	}
	if _, err := a.Fetch(0x1000, 1); err == nil {
		t.Fatal("fetch from non-exec page succeeded")
	}
}

func TestXOMSemantics(t *testing.T) {
	// eXecute-Only Memory: exec allowed, read and write fault.
	a := NewAddressSpace()
	mustMap(t, a, 0, PageSize, PermExec, "trampoline")

	if _, err := a.Fetch(0, 2); err != nil {
		t.Fatalf("fetch from XOM page: %v", err)
	}
	if _, err := a.Load(0, 1, 0); err == nil {
		t.Fatal("read from XOM page succeeded")
	}
	if err := a.Store(0, []byte{1}, 0); err == nil {
		t.Fatal("write to XOM page succeeded")
	}
}

func TestPKUBlocksDataNotFetch(t *testing.T) {
	// The PKU asymmetry behind P4a: protection keys deny reads/writes but
	// never instruction fetches.
	a := NewAddressSpace()
	mustMap(t, a, 0, PageSize, PermRWX, "trampoline")
	if err := a.ProtectWithKey(0, PageSize, PermRWX, 1); err != nil {
		t.Fatal(err)
	}
	pkru := PKRU(0).DenyAccess(1)

	if _, err := a.Load(0, 1, pkru); err == nil {
		t.Fatal("pkey-denied read succeeded")
	} else if f := err.(*Fault); f.Cause != CausePkey {
		t.Fatalf("cause = %v, want pkey", f.Cause)
	}
	if err := a.Store(0, []byte{1}, pkru); err == nil {
		t.Fatal("pkey-denied write succeeded")
	}
	if _, err := a.Fetch(0, 2); err != nil {
		t.Fatalf("fetch through denied pkey should succeed: %v", err)
	}
}

func TestPKRUWriteOnlyDeny(t *testing.T) {
	a := NewAddressSpace()
	mustMap(t, a, 0x1000, PageSize, PermRW, "data")
	if err := a.ProtectWithKey(0x1000, PageSize, PermRW, 2); err != nil {
		t.Fatal(err)
	}
	pkru := PKRU(0).DenyWrite(2)
	if _, err := a.Load(0x1000, 1, pkru); err != nil {
		t.Fatalf("read under write-deny pkey: %v", err)
	}
	if err := a.Store(0x1000, []byte{1}, pkru); err == nil {
		t.Fatal("write under write-deny pkey succeeded")
	}
	if err := a.Store(0x1000, []byte{1}, pkru.Allow(2)); err != nil {
		t.Fatalf("write after Allow: %v", err)
	}
}

func TestKernelPlaneBypassesPerms(t *testing.T) {
	a := NewAddressSpace()
	mustMap(t, a, 0x1000, PageSize, PermNone, "guarded")
	if err := a.KStore(0x1000, []byte{42}); err != nil {
		t.Fatalf("KStore: %v", err)
	}
	b, err := a.KLoad(0x1000, 1)
	if err != nil || b[0] != 42 {
		t.Fatalf("KLoad = %v, %v", b, err)
	}
}

func TestGenBumpsOnWrite(t *testing.T) {
	a := NewAddressSpace()
	mustMap(t, a, 0x1000, PageSize, PermRW, "code")
	g0 := a.Gen(0x1000)
	if err := a.Store(0x1234, []byte{1}, 0); err != nil {
		t.Fatal(err)
	}
	if g1 := a.Gen(0x1000); g1 <= g0 {
		t.Fatalf("gen did not increase: %d -> %d", g0, g1)
	}
}

func TestRegions(t *testing.T) {
	a := NewAddressSpace()
	mustMap(t, a, 0x1000, PageSize, PermRX, "/lib/libc.so.6")
	mustMap(t, a, 0x3000, PageSize, PermRW, "[stack]")

	r, ok := a.RegionAt(0x1234)
	if !ok || r.Name != "/lib/libc.so.6" {
		t.Fatalf("RegionAt(0x1234) = %+v, %v", r, ok)
	}
	if _, ok := a.RegionAt(0x2000); ok {
		t.Fatal("RegionAt in hole should fail")
	}
	if _, ok := a.RegionByName("[stack]"); !ok {
		t.Fatal("RegionByName([stack]) failed")
	}
}

func TestRegionSplitOnOverlap(t *testing.T) {
	a := NewAddressSpace()
	mustMap(t, a, 0x1000, 4*PageSize, PermRW, "big")
	mustMap(t, a, 0x2000, PageSize, PermRX, "hole")

	regions := a.Regions()
	if len(regions) != 3 {
		t.Fatalf("got %d regions %v, want 3", len(regions), regions)
	}
	if regions[0].Name != "big" || regions[0].End != 0x2000 {
		t.Fatalf("regions[0] = %+v", regions[0])
	}
	if regions[1].Name != "hole" {
		t.Fatalf("regions[1] = %+v", regions[1])
	}
	if regions[2].Name != "big" || regions[2].Start != 0x3000 {
		t.Fatalf("regions[2] = %+v", regions[2])
	}
}

func TestUnmapRemovesPagesAndRegions(t *testing.T) {
	a := NewAddressSpace()
	mustMap(t, a, 0x1000, 2*PageSize, PermRW, "tmp")
	if err := a.Unmap(0x1000, PageSize); err != nil {
		t.Fatal(err)
	}
	if a.Mapped(0x1000, 1) {
		t.Fatal("page still mapped after unmap")
	}
	if !a.Mapped(0x2000, 1) {
		t.Fatal("second page should remain mapped")
	}
	if _, ok := a.RegionAt(0x1000); ok {
		t.Fatal("region survives unmap")
	}
}

func TestClone(t *testing.T) {
	a := NewAddressSpace()
	mustMap(t, a, 0x1000, PageSize, PermRW, "data")
	if err := a.Store(0x1000, []byte{7}, 0); err != nil {
		t.Fatal(err)
	}
	c := a.Clone()
	if err := c.Store(0x1000, []byte{9}, 0); err != nil {
		t.Fatal(err)
	}
	b, _ := a.Load(0x1000, 1, 0)
	if b[0] != 7 {
		t.Fatalf("clone write leaked into parent: %d", b[0])
	}
}

func TestProtectUnmappedFails(t *testing.T) {
	a := NewAddressSpace()
	if err := a.Protect(0x1000, PageSize, PermRW); err == nil {
		t.Fatal("Protect on unmapped range succeeded")
	}
}

func TestMapAlignment(t *testing.T) {
	a := NewAddressSpace()
	if err := a.Map(0x1001, PageSize, PermRW, "x"); err == nil {
		t.Fatal("unaligned Map succeeded")
	}
	if err := a.Unmap(0x1001, PageSize); err == nil {
		t.Fatal("unaligned Unmap succeeded")
	}
}

func TestU64Helpers(t *testing.T) {
	a := NewAddressSpace()
	mustMap(t, a, 0x1000, PageSize, PermRW, "data")
	if err := a.StoreU64(0x1008, 0xdeadbeefcafef00d, 0); err != nil {
		t.Fatal(err)
	}
	v, err := a.LoadU64(0x1008, 0)
	if err != nil || v != 0xdeadbeefcafef00d {
		t.Fatalf("LoadU64 = %#x, %v", v, err)
	}
	if err := a.KStoreU64(0x1010, 42); err != nil {
		t.Fatal(err)
	}
	kv, err := a.KLoadU64(0x1010)
	if err != nil || kv != 42 {
		t.Fatalf("KLoadU64 = %d, %v", kv, err)
	}
}

func TestKLoadString(t *testing.T) {
	a := NewAddressSpace()
	mustMap(t, a, 0x1000, PageSize, PermRW, "data")
	if err := a.KStore(0x1000, append([]byte("hello"), 0)); err != nil {
		t.Fatal(err)
	}
	s, err := a.KLoadString(0x1000, 64)
	if err != nil || s != "hello" {
		t.Fatalf("KLoadString = %q, %v", s, err)
	}
}

// Property: a round trip through Store/Load preserves arbitrary data at
// arbitrary in-range offsets.
func TestQuickStoreLoadRoundTrip(t *testing.T) {
	a := NewAddressSpace()
	const base, span = 0x10000, 16 * PageSize
	mustMap(t, a, base, span, PermRW, "arena")

	f := func(off uint16, data []byte) bool {
		addr := base + uint64(off)
		if len(data) == 0 || addr+uint64(len(data)) > base+span {
			return true
		}
		if err := a.Store(addr, data, 0); err != nil {
			return false
		}
		got, err := a.Load(addr, len(data), 0)
		if err != nil {
			return false
		}
		for i := range data {
			if got[i] != data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: PKRU helpers compose: Allow undoes DenyAccess/DenyWrite.
func TestQuickPKRUCompose(t *testing.T) {
	f := func(init uint32, key uint8) bool {
		k := int(key % NumPkeys)
		p := PKRU(init)
		if PKRU(init).DenyAccess(k).mayRead(k) || PKRU(init).DenyAccess(k).mayWrite(k) {
			return false
		}
		if PKRU(init).DenyWrite(k).mayWrite(k) {
			return false
		}
		if !PKRU(init).DenyWrite(k).mayRead(k) && p.mayRead(k) {
			return false
		}
		q := p.DenyAccess(k).Allow(k)
		return q.mayRead(k) && q.mayWrite(k)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPermString(t *testing.T) {
	cases := []struct {
		p    Perm
		want string
	}{
		{PermNone, "---"},
		{PermRead, "r--"},
		{PermRW, "rw-"},
		{PermRX, "r-x"},
		{PermRWX, "rwx"},
		{PermExec, "--x"},
	}
	for _, c := range cases {
		if got := c.p.String(); got != c.want {
			t.Errorf("%v.String() = %q, want %q", uint8(c.p), got, c.want)
		}
	}
}
