// Package mem implements the simulated 64-bit address space used by the
// K23 reproduction: demand-allocated pages with read/write/execute
// permissions, Protection Keys for Userspace (PKU) semantics, named regions
// (the source of /proc/<pid>/maps), and per-page write-generation counters
// that the CPU's instruction-cache model consumes.
//
// Two access planes are provided. The user plane (Load, Store, Fetch)
// enforces page permissions and PKU and returns *Fault errors that the
// kernel converts into signals. The kernel plane (KLoad, KStore, KFetch)
// bypasses permissions, as the real kernel does when it builds signal
// frames or services ptrace(PTRACE_POKEDATA) and process_vm_writev.
package mem

import (
	"fmt"
	"sort"
	"sync"
)

// PageSize is the size of a virtual memory page in bytes, matching x86-64.
const PageSize = 4096

// PageShift is log2(PageSize).
const PageShift = 12

// Perm is a page permission bitmask.
type Perm uint8

// Page permission bits. A page with PermExec but neither PermRead nor
// PermWrite is eXecute-Only Memory (XOM).
const (
	PermRead Perm = 1 << iota
	PermWrite
	PermExec

	PermNone Perm = 0
	PermRW        = PermRead | PermWrite
	PermRX        = PermRead | PermExec
	PermRWX       = PermRead | PermWrite | PermExec
)

// String renders the permission in /proc/<pid>/maps style ("rwx", "r-x"…).
func (p Perm) String() string {
	b := []byte("---")
	if p&PermRead != 0 {
		b[0] = 'r'
	}
	if p&PermWrite != 0 {
		b[1] = 'w'
	}
	if p&PermExec != 0 {
		b[2] = 'x'
	}
	return string(b)
}

// AccessKind identifies the type of memory access that faulted.
type AccessKind uint8

// Access kinds reported in faults.
const (
	AccessRead AccessKind = iota
	AccessWrite
	AccessExec
)

func (k AccessKind) String() string {
	switch k {
	case AccessRead:
		return "read"
	case AccessWrite:
		return "write"
	case AccessExec:
		return "exec"
	default:
		return fmt.Sprintf("access(%d)", uint8(k))
	}
}

// FaultCause distinguishes why an access faulted.
type FaultCause uint8

// Fault causes.
const (
	// CauseUnmapped means no page is mapped at the address.
	CauseUnmapped FaultCause = iota
	// CausePerm means the page is mapped but the page permissions forbid
	// the access.
	CausePerm
	// CausePkey means page permissions allow the access but the page's
	// protection key, evaluated against the accessing thread's PKRU,
	// forbids it. Instruction fetches are never blocked by protection
	// keys: that asymmetry is what makes PKU-based XOM (and pitfall P4a)
	// possible.
	CausePkey
)

func (c FaultCause) String() string {
	switch c {
	case CauseUnmapped:
		return "unmapped"
	case CausePerm:
		return "permission"
	case CausePkey:
		return "pkey"
	default:
		return fmt.Sprintf("cause(%d)", uint8(c))
	}
}

// Fault describes a memory access violation. It is returned by the user
// plane accessors and converted by the kernel into SIGSEGV.
type Fault struct {
	Addr   uint64
	Access AccessKind
	Cause  FaultCause
}

func (f *Fault) Error() string {
	return fmt.Sprintf("memory fault: %s at %#x (%s)", f.Access, f.Addr, f.Cause)
}

// PKRU is a thread's protection-key rights register: two bits per key,
// bit 2k = access-disable (AD), bit 2k+1 = write-disable (WD), matching
// the x86-64 PKRU layout.
type PKRU uint32

// NumPkeys is the number of protection keys, matching x86-64 PKU.
const NumPkeys = 16

// DenyAccess returns a PKRU value equal to p with all access to key
// denied (AD=1, WD=1).
func (p PKRU) DenyAccess(key int) PKRU {
	return p | PKRU(0b11<<(2*key))
}

// DenyWrite returns a PKRU value equal to p with writes through key
// denied (WD=1) but reads allowed.
func (p PKRU) DenyWrite(key int) PKRU {
	return p | PKRU(0b10<<(2*key))
}

// Allow returns a PKRU value equal to p with key fully allowed.
func (p PKRU) Allow(key int) PKRU {
	return p &^ PKRU(0b11 << (2 * key))
}

// mayRead reports whether the PKRU permits reads through key.
func (p PKRU) mayRead(key int) bool { return p&(1<<(2*key)) == 0 }

// mayWrite reports whether the PKRU permits writes through key.
func (p PKRU) mayWrite(key int) bool { return p&(0b11<<(2*key)) == 0 }

// page is a single mapped 4 KiB page.
type page struct {
	data [PageSize]byte
	perm Perm
	pkey int
	// gen is incremented on every store to the page. The CPU I-cache
	// model snapshots it to detect (or deliberately miss, absent
	// serialization) cross-modifying code.
	gen uint64
}

// Region describes a named contiguous mapping, as reported by
// /proc/<pid>/maps. Offsets within a region are stable across runs even
// under ASLR, which is what K23's offline logs rely on.
type Region struct {
	Start uint64
	End   uint64 // exclusive
	Perm  Perm   // permission the region was mapped with
	Name  string // e.g. "/lib/libc.so.6", "[stack]", "[vdso]"
}

// Contains reports whether addr falls inside the region.
func (r Region) Contains(addr uint64) bool { return addr >= r.Start && addr < r.End }

// Size returns the region length in bytes.
func (r Region) Size() uint64 { return r.End - r.Start }

// AddressSpace is a sparse 64-bit virtual address space.
//
// The zero value is not usable; call NewAddressSpace. All methods are safe
// for concurrent use by multiple goroutines (the kernel scheduler is
// single-stepped, but tests and tracers may inspect memory concurrently).
type AddressSpace struct {
	mu      sync.RWMutex
	pages   map[uint64]*page // page number -> page
	regions []Region         // sorted by Start

	// genClock issues write generations. It is monotone across the whole
	// address space so a generation value is never reused, even when a
	// page is unmapped and a fresh one mapped at the same address: any
	// cache keyed on a page's generation can rely on "same gen" meaning
	// "same bytes, same permission".
	genClock uint64
}

// NewAddressSpace returns an empty address space.
func NewAddressSpace() *AddressSpace {
	return &AddressSpace{pages: make(map[uint64]*page)}
}

// Clone returns a deep copy of the address space (used by fork).
func (a *AddressSpace) Clone() *AddressSpace {
	a.mu.RLock()
	defer a.mu.RUnlock()
	c := NewAddressSpace()
	for pn, pg := range a.pages {
		np := *pg
		c.pages[pn] = &np
	}
	c.regions = append([]Region(nil), a.regions...)
	c.genClock = a.genClock
	return c
}

// PageNum returns the page number containing addr.
func PageNum(addr uint64) uint64 { return addr >> PageShift }

// PageBase returns the base address of the page containing addr.
func PageBase(addr uint64) uint64 { return addr &^ (PageSize - 1) }

// PageCount returns how many pages are needed to cover length bytes
// starting at addr.
func PageCount(addr, length uint64) uint64 {
	if length == 0 {
		return 0
	}
	first := PageNum(addr)
	last := PageNum(addr + length - 1)
	return last - first + 1
}

// Map maps [addr, addr+length) with the given permission and records a
// named region. addr must be page-aligned. Mapping over an existing page
// replaces it (like MAP_FIXED). length is rounded up to whole pages.
func (a *AddressSpace) Map(addr, length uint64, perm Perm, name string) error {
	if addr%PageSize != 0 {
		return fmt.Errorf("mem: map address %#x is not page-aligned", addr)
	}
	if length == 0 {
		return fmt.Errorf("mem: map length is zero")
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	n := PageCount(addr, length)
	for i := uint64(0); i < n; i++ {
		a.genClock++
		a.pages[PageNum(addr)+i] = &page{perm: perm, gen: a.genClock}
	}
	end := addr + n*PageSize
	a.insertRegionLocked(Region{Start: addr, End: end, Perm: perm, Name: name})
	return nil
}

// Unmap removes pages covering [addr, addr+length).
func (a *AddressSpace) Unmap(addr, length uint64) error {
	if addr%PageSize != 0 {
		return fmt.Errorf("mem: unmap address %#x is not page-aligned", addr)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	n := PageCount(addr, length)
	for i := uint64(0); i < n; i++ {
		delete(a.pages, PageNum(addr)+i)
	}
	a.removeRegionRangeLocked(addr, addr+n*PageSize)
	return nil
}

// insertRegionLocked inserts r, splitting or removing any overlapped
// existing regions.
func (a *AddressSpace) insertRegionLocked(r Region) {
	a.removeRegionRangeLocked(r.Start, r.End)
	a.regions = append(a.regions, r)
	sort.Slice(a.regions, func(i, j int) bool { return a.regions[i].Start < a.regions[j].Start })
}

// removeRegionRangeLocked carves [start,end) out of the region list.
func (a *AddressSpace) removeRegionRangeLocked(start, end uint64) {
	var out []Region
	for _, reg := range a.regions {
		switch {
		case reg.End <= start || reg.Start >= end:
			out = append(out, reg)
		default:
			if reg.Start < start {
				out = append(out, Region{Start: reg.Start, End: start, Perm: reg.Perm, Name: reg.Name})
			}
			if reg.End > end {
				out = append(out, Region{Start: end, End: reg.End, Perm: reg.Perm, Name: reg.Name})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	a.regions = out
}

// Regions returns a copy of the region list, sorted by start address.
func (a *AddressSpace) Regions() []Region {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return append([]Region(nil), a.regions...)
}

// RegionAt returns the region containing addr, if any.
func (a *AddressSpace) RegionAt(addr uint64) (Region, bool) {
	a.mu.RLock()
	defer a.mu.RUnlock()
	for _, r := range a.regions {
		if r.Contains(addr) {
			return r, true
		}
	}
	return Region{}, false
}

// RegionByName returns the first region with the given name.
func (a *AddressSpace) RegionByName(name string) (Region, bool) {
	a.mu.RLock()
	defer a.mu.RUnlock()
	for _, r := range a.regions {
		if r.Name == name {
			return r, true
		}
	}
	return Region{}, false
}

// Protect changes the permission of the pages covering [addr, addr+length).
// All covered pages must be mapped. Mirrors mprotect(2).
func (a *AddressSpace) Protect(addr, length uint64, perm Perm) error {
	if addr%PageSize != 0 {
		return fmt.Errorf("mem: protect address %#x is not page-aligned", addr)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	n := PageCount(addr, length)
	for i := uint64(0); i < n; i++ {
		pg, ok := a.pages[PageNum(addr)+i]
		if !ok {
			return &Fault{Addr: addr + i*PageSize, Access: AccessWrite, Cause: CauseUnmapped}
		}
		pg.perm = perm
		// A permission change invalidates generation-keyed caches: a
		// fetch that succeeded before mprotect may fault afterwards.
		a.genClock++
		pg.gen = a.genClock
	}
	return nil
}

// ProtectWithKey changes permissions and assigns a protection key,
// mirroring pkey_mprotect(2).
func (a *AddressSpace) ProtectWithKey(addr, length uint64, perm Perm, pkey int) error {
	if pkey < 0 || pkey >= NumPkeys {
		return fmt.Errorf("mem: invalid protection key %d", pkey)
	}
	if err := a.Protect(addr, length, perm); err != nil {
		return err
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	n := PageCount(addr, length)
	for i := uint64(0); i < n; i++ {
		a.pages[PageNum(addr)+i].pkey = pkey
	}
	return nil
}

// PermAt returns the permission and protection key of the page containing
// addr. ok is false if the page is unmapped.
func (a *AddressSpace) PermAt(addr uint64) (perm Perm, pkey int, ok bool) {
	a.mu.RLock()
	defer a.mu.RUnlock()
	pg, found := a.pages[PageNum(addr)]
	if !found {
		return 0, 0, false
	}
	return pg.perm, pg.pkey, true
}

// Mapped reports whether every page of [addr, addr+length) is mapped.
func (a *AddressSpace) Mapped(addr, length uint64) bool {
	a.mu.RLock()
	defer a.mu.RUnlock()
	n := PageCount(addr, length)
	for i := uint64(0); i < n; i++ {
		if _, ok := a.pages[PageNum(addr)+i]; !ok {
			return false
		}
	}
	return true
}

// Gen returns the write generation of the page containing addr, or 0 if
// the page is unmapped. The CPU I-cache uses this to decide whether a
// cached line is stale.
func (a *AddressSpace) Gen(addr uint64) uint64 {
	a.mu.RLock()
	defer a.mu.RUnlock()
	if pg, ok := a.pages[PageNum(addr)]; ok {
		return pg.gen
	}
	return 0
}

// checkLocked validates an n-byte access of the given kind at addr under
// pkru and returns the page, or a fault. Caller holds a.mu (read or write).
func (a *AddressSpace) checkLocked(addr uint64, kind AccessKind, pkru PKRU) (*page, *Fault) {
	pg, ok := a.pages[PageNum(addr)]
	if !ok {
		return nil, &Fault{Addr: addr, Access: kind, Cause: CauseUnmapped}
	}
	switch kind {
	case AccessRead:
		if pg.perm&PermRead == 0 {
			return nil, &Fault{Addr: addr, Access: kind, Cause: CausePerm}
		}
		if !pkru.mayRead(pg.pkey) {
			return nil, &Fault{Addr: addr, Access: kind, Cause: CausePkey}
		}
	case AccessWrite:
		if pg.perm&PermWrite == 0 {
			return nil, &Fault{Addr: addr, Access: kind, Cause: CausePerm}
		}
		if !pkru.mayWrite(pg.pkey) {
			return nil, &Fault{Addr: addr, Access: kind, Cause: CausePkey}
		}
	case AccessExec:
		// Instruction fetch: page must be executable. Protection keys do
		// NOT apply to fetches (x86-64 PKU semantics).
		if pg.perm&PermExec == 0 {
			return nil, &Fault{Addr: addr, Access: kind, Cause: CausePerm}
		}
	}
	return pg, nil
}

// Load reads n bytes at addr under the user plane, enforcing page
// permissions and pkru.
func (a *AddressSpace) Load(addr uint64, n int, pkru PKRU) ([]byte, error) {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.copyOutLocked(addr, n, AccessRead, pkru)
}

// Fetch reads n instruction bytes at addr, enforcing execute permission.
// Protection keys are ignored for fetches, which is what enables PKU-XOM.
func (a *AddressSpace) Fetch(addr uint64, n int) ([]byte, error) {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.copyOutLocked(addr, n, AccessExec, 0)
}

// FetchLine fills buf with the cache line containing addr (buf length
// must divide PageSize so a line never spans pages), enforcing execute
// permission, and returns the page's write generation. This is the
// single-lock fast path backing the CPU instruction cache.
func (a *AddressSpace) FetchLine(addr uint64, buf []byte) (gen uint64, err error) {
	a.mu.RLock()
	defer a.mu.RUnlock()
	pg, fault := a.checkLocked(addr, AccessExec, 0)
	if fault != nil {
		return 0, fault
	}
	lineBase := addr &^ uint64(len(buf)-1)
	off := lineBase % PageSize
	copy(buf, pg.data[off:off+uint64(len(buf))])
	return pg.gen, nil
}

func (a *AddressSpace) copyOutLocked(addr uint64, n int, kind AccessKind, pkru PKRU) ([]byte, error) {
	out := make([]byte, n)
	off := 0
	for off < n {
		cur := addr + uint64(off)
		pg, fault := a.checkLocked(cur, kind, pkru)
		if fault != nil {
			return nil, fault
		}
		po := cur % PageSize
		c := copy(out[off:], pg.data[po:])
		off += c
	}
	return out, nil
}

// Store writes b at addr under the user plane, enforcing page permissions
// and pkru, and bumps the write generation of every touched page.
func (a *AddressSpace) Store(addr uint64, b []byte, pkru PKRU) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	// Validate the whole range first so a partially permitted store does
	// not partially complete.
	for off := 0; off < len(b); off += PageSize {
		if _, fault := a.checkLocked(addr+uint64(off), AccessWrite, pkru); fault != nil {
			return fault
		}
	}
	if len(b) > 0 {
		if _, fault := a.checkLocked(addr+uint64(len(b)-1), AccessWrite, pkru); fault != nil {
			return fault
		}
	}
	a.writeLocked(addr, b)
	return nil
}

// KLoad reads n bytes bypassing permissions (kernel plane).
func (a *AddressSpace) KLoad(addr uint64, n int) ([]byte, error) {
	a.mu.RLock()
	defer a.mu.RUnlock()
	out := make([]byte, n)
	off := 0
	for off < n {
		cur := addr + uint64(off)
		pg, ok := a.pages[PageNum(cur)]
		if !ok {
			return nil, &Fault{Addr: cur, Access: AccessRead, Cause: CauseUnmapped}
		}
		po := cur % PageSize
		c := copy(out[off:], pg.data[po:])
		off += c
	}
	return out, nil
}

// KStore writes b bypassing permissions (kernel plane). Pages must be
// mapped. Write generations are still bumped so the I-cache model sees
// kernel-plane code modification too.
func (a *AddressSpace) KStore(addr uint64, b []byte) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	for off := 0; off < len(b); off += PageSize {
		if _, ok := a.pages[PageNum(addr+uint64(off))]; !ok {
			return &Fault{Addr: addr + uint64(off), Access: AccessWrite, Cause: CauseUnmapped}
		}
	}
	if len(b) > 0 {
		if _, ok := a.pages[PageNum(addr+uint64(len(b)-1))]; !ok {
			return &Fault{Addr: addr + uint64(len(b)-1), Access: AccessWrite, Cause: CauseUnmapped}
		}
	}
	a.writeLocked(addr, b)
	return nil
}

// writeLocked performs the raw write and generation bumps. All touched
// pages must exist.
func (a *AddressSpace) writeLocked(addr uint64, b []byte) {
	off := 0
	for off < len(b) {
		cur := addr + uint64(off)
		pg := a.pages[PageNum(cur)]
		po := cur % PageSize
		c := copy(pg.data[po:], b[off:])
		a.genClock++
		pg.gen = a.genClock
		off += c
	}
}

// LoadU64 reads a little-endian uint64 under the user plane.
func (a *AddressSpace) LoadU64(addr uint64, pkru PKRU) (uint64, error) {
	b, err := a.Load(addr, 8, pkru)
	if err != nil {
		return 0, err
	}
	return leU64(b), nil
}

// StoreU64 writes a little-endian uint64 under the user plane.
func (a *AddressSpace) StoreU64(addr, v uint64, pkru PKRU) error {
	return a.Store(addr, putLeU64(v), pkru)
}

// KLoadU64 reads a little-endian uint64 on the kernel plane.
func (a *AddressSpace) KLoadU64(addr uint64) (uint64, error) {
	b, err := a.KLoad(addr, 8)
	if err != nil {
		return 0, err
	}
	return leU64(b), nil
}

// KStoreU64 writes a little-endian uint64 on the kernel plane.
func (a *AddressSpace) KStoreU64(addr, v uint64) error {
	return a.KStore(addr, putLeU64(v))
}

// KLoadString reads a NUL-terminated string of at most max bytes on the
// kernel plane.
func (a *AddressSpace) KLoadString(addr uint64, max int) (string, error) {
	var out []byte
	for i := 0; i < max; i++ {
		b, err := a.KLoad(addr+uint64(i), 1)
		if err != nil {
			return "", err
		}
		if b[0] == 0 {
			break
		}
		out = append(out, b[0])
	}
	return string(out), nil
}

func leU64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func putLeU64(v uint64) []byte {
	return []byte{
		byte(v), byte(v >> 8), byte(v >> 16), byte(v >> 24),
		byte(v >> 32), byte(v >> 40), byte(v >> 48), byte(v >> 56),
	}
}
