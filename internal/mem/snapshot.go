package mem

// Checkpoint support: an AddressSpace can be snapshotted into an
// ASState and later restored from it, in place. Snapshots are
// dirty-page deltas against a previous snapshot: the genClock is
// monotone across the whole address space and a page's gen changes on
// every store, mprotect and remap, so "same gen" means "same bytes,
// same permission" — an unchanged page's 4 KiB copy is shared with the
// previous snapshot instead of re-copied. Restore always copies data
// back into fresh page structs, so one ASState can seed any number of
// restores and snapshot chains never alias live memory.

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// PageState is the snapshot of one mapped page. Data is shared between
// consecutive snapshots when the page generation is unchanged; it is
// never aliased by a live AddressSpace.
type PageState struct {
	Perm Perm
	Pkey int
	Gen  uint64
	Data *[PageSize]byte
}

// ASState is a point-in-time snapshot of an AddressSpace.
type ASState struct {
	Pages    map[uint64]PageState // page number -> page snapshot
	Regions  []Region
	GenClock uint64

	// Copied and Shared count pages deep-copied into this snapshot vs
	// shared with the previous one (the delta-checkpoint space metric).
	Copied int
	Shared int
}

// SnapshotState captures the address space. prev, if non-nil, is an
// earlier snapshot of the same address space: pages whose generation is
// unchanged share prev's data copy instead of being re-copied.
func (a *AddressSpace) SnapshotState(prev *ASState) *ASState {
	a.mu.RLock()
	defer a.mu.RUnlock()
	s := &ASState{
		Pages:    make(map[uint64]PageState, len(a.pages)),
		Regions:  append([]Region(nil), a.regions...),
		GenClock: a.genClock,
	}
	for pn, pg := range a.pages {
		ps := PageState{Perm: pg.perm, Pkey: pg.pkey, Gen: pg.gen}
		if prev != nil {
			if old, ok := prev.Pages[pn]; ok && old.Gen == pg.gen {
				ps.Data = old.Data
				s.Shared++
				s.Pages[pn] = ps
				continue
			}
		}
		data := pg.data
		ps.Data = &data
		s.Copied++
		s.Pages[pn] = ps
	}
	return s
}

// RestoreState rewinds the address space to the snapshot, in place: the
// AddressSpace object keeps its identity (cores and host closures that
// hold the pointer stay valid) while its page table, regions and
// genClock are replaced by copies of the snapshot's.
func (a *AddressSpace) RestoreState(s *ASState) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.pages = make(map[uint64]*page, len(s.Pages))
	for pn, ps := range s.Pages {
		pg := &page{perm: ps.Perm, pkey: ps.Pkey, gen: ps.Gen}
		pg.data = *ps.Data
		a.pages[pn] = pg
	}
	a.regions = append([]Region(nil), s.Regions...)
	a.genClock = s.GenClock
}

// StateHash returns a deterministic FNV-1a hash of the full address
// space state — every page's number, permission, pkey, generation and
// bytes (in sorted page order) plus the region table and generation
// clock. The checkpoint property tests compare it across
// Checkpoint/mutate/Restore cycles.
func (a *AddressSpace) StateHash() uint64 {
	a.mu.RLock()
	defer a.mu.RUnlock()
	h := fnv.New64a()
	pns := make([]uint64, 0, len(a.pages))
	for pn := range a.pages {
		pns = append(pns, pn)
	}
	sort.Slice(pns, func(i, j int) bool { return pns[i] < pns[j] })
	for _, pn := range pns {
		pg := a.pages[pn]
		fmt.Fprintf(h, "p %d %d %d %d ", pn, pg.perm, pg.pkey, pg.gen)
		h.Write(pg.data[:])
		h.Write([]byte{'\n'})
	}
	for _, r := range a.regions {
		fmt.Fprintf(h, "r %#x %#x %s %q\n", r.Start, r.End, r.Perm, r.Name)
	}
	fmt.Fprintf(h, "g %d\n", a.genClock)
	return h.Sum64()
}
