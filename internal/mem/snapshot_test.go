package mem

import "testing"

// buildAS maps a few regions and dirties their pages so a snapshot has
// real content to preserve.
func buildAS(t *testing.T) *AddressSpace {
	t.Helper()
	a := NewAddressSpace()
	if err := a.Map(0x1000, 8*PageSize, PermRW, "heap"); err != nil {
		t.Fatalf("Map heap: %v", err)
	}
	if err := a.Map(0x400000, 4*PageSize, PermRX, "text"); err != nil {
		t.Fatalf("Map text: %v", err)
	}
	for i := uint64(0); i < 8; i++ {
		if err := a.KStore(0x1000+i*PageSize, []byte{byte(i), 0x42, byte(i * 7)}); err != nil {
			t.Fatalf("KStore page %d: %v", i, err)
		}
	}
	if err := a.KStore(0x400000, []byte{0x0f, 0x05}); err != nil {
		t.Fatalf("KStore text: %v", err)
	}
	return a
}

// TestASStateRoundTrip is the mem leg of the checkpoint property:
// Snapshot → mutate → Restore must reproduce the exact pre-mutation
// StateHash, and one snapshot must survive being restored repeatedly.
func TestASStateRoundTrip(t *testing.T) {
	a := buildAS(t)
	h0 := a.StateHash()
	s0 := a.SnapshotState(nil)

	mutate := func() {
		if err := a.KStore(0x2000, []byte("mutated")); err != nil {
			t.Fatalf("KStore: %v", err)
		}
		if err := a.Protect(0x1000, PageSize, PermRead); err != nil {
			t.Fatalf("Protect: %v", err)
		}
		if err := a.Map(0x900000, PageSize, PermRW, "late"); err != nil {
			t.Fatalf("Map: %v", err)
		}
		if err := a.Unmap(0x400000+2*PageSize, PageSize); err != nil {
			t.Fatalf("Unmap: %v", err)
		}
	}
	mutate()
	if a.StateHash() == h0 {
		t.Fatalf("mutation did not change the state hash; test is vacuous")
	}
	a.RestoreState(s0)
	if got := a.StateHash(); got != h0 {
		t.Fatalf("restore: hash %#x, want %#x", got, h0)
	}

	// The same snapshot must seed a second restore after fresh damage.
	mutate()
	a.RestoreState(s0)
	if got := a.StateHash(); got != h0 {
		t.Fatalf("second restore from same snapshot: hash %#x, want %#x", got, h0)
	}
}

// TestASStateDeltaSharing checks that a chained snapshot copies only
// pages whose generation moved and that restoring from the delta still
// reproduces the exact state.
func TestASStateDeltaSharing(t *testing.T) {
	a := buildAS(t)
	s0 := a.SnapshotState(nil)
	if s0.Shared != 0 {
		t.Fatalf("base snapshot shared %d pages with nil prev", s0.Shared)
	}

	if err := a.KStore(0x3000, []byte("dirty")); err != nil {
		t.Fatalf("KStore: %v", err)
	}
	h1 := a.StateHash()
	s1 := a.SnapshotState(s0)
	if s1.Copied != 1 {
		t.Fatalf("delta copied %d pages, want exactly the 1 dirtied page", s1.Copied)
	}
	if s1.Shared != s0.Copied-1 {
		t.Fatalf("delta shared %d pages, want %d", s1.Shared, s0.Copied-1)
	}

	// Damage everything, then restore from the delta.
	for i := uint64(0); i < 8; i++ {
		if err := a.KStore(0x1000+i*PageSize, []byte("xxxx")); err != nil {
			t.Fatalf("KStore: %v", err)
		}
	}
	a.RestoreState(s1)
	if got := a.StateHash(); got != h1 {
		t.Fatalf("restore from delta: hash %#x, want %#x", got, h1)
	}

	// The chain's base must be unharmed by restores of its child: shared
	// page data is copy-on-restore, never aliased.
	a.RestoreState(s0)
	if err := a.KStore(0x3000, []byte("post-restore damage")); err != nil {
		t.Fatalf("KStore: %v", err)
	}
	a.RestoreState(s1)
	if got := a.StateHash(); got != h1 {
		t.Fatalf("delta snapshot corrupted by writes after a base restore: hash %#x, want %#x", got, h1)
	}
}
