package ptracer_test

import (
	"testing"

	"k23/internal/asm"
	"k23/internal/cpu"
	"k23/internal/image"
	"k23/internal/interpose"
	"k23/internal/kernel"
	"k23/internal/libc"
	"k23/internal/ptracer"
)

func buildProg() *image.Image {
	b := asm.NewBuilder("/bin/prog")
	b.Needed(libc.Path)
	d := b.Data()
	d.Label(".tv").Space(16)
	tx := b.Text()
	tx.Label("_start")
	tx.MovImmSym(cpu.RDI, ".tv")
	tx.CallSym("gettimeofday")
	tx.CallSym("getpid")
	tx.Mov(cpu.RDI, cpu.RAX)
	tx.CallSym("exit_group")
	return b.MustBuild()
}

func TestPtracerExhaustive(t *testing.T) {
	w := interpose.NewWorld()
	w.MustRegister(buildProg())

	var nrs []uint64
	pt := ptracer.New(interpose.Config{
		Hook: func(c *interpose.Call) (uint64, bool) {
			nrs = append(nrs, c.Num)
			if c.Mechanism != interpose.MechPtrace {
				t.Errorf("mechanism = %v", c.Mechanism)
			}
			return 0, false
		},
	})
	p, err := pt.Launch(w, "/bin/prog", []string{"prog"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Startup syscalls were already traced at spawn time.
	startupSeen := len(nrs)
	if startupSeen < 20 {
		t.Fatalf("ptracer saw only %d startup syscalls; must be exhaustive from the first instruction", startupSeen)
	}
	if err := w.Run(p); err != nil {
		t.Fatal(err)
	}
	if p.Exit.Code != p.PID {
		t.Fatalf("exit = %+v", p.Exit)
	}
	// With the vdso disabled, gettimeofday must appear as a real trap.
	foundTime, foundPid := false, false
	for _, nr := range nrs[startupSeen:] {
		if nr == kernel.SysGettimeofday {
			foundTime = true
		}
		if nr == kernel.SysGetpid {
			foundPid = true
		}
	}
	if !foundTime {
		t.Fatal("vdso-disabled gettimeofday not traced (P2b fix broken)")
	}
	if !foundPid {
		t.Fatal("getpid not traced")
	}
	if pt.Stats(p).Ptraced == 0 {
		t.Fatal("stats empty")
	}
}

func TestPtracerEmulates(t *testing.T) {
	w := interpose.NewWorld()
	w.MustRegister(buildProg())

	pt := ptracer.New(interpose.Config{
		Hook: func(c *interpose.Call) (uint64, bool) {
			if c.Num == kernel.SysGetpid {
				return 88, true
			}
			return 0, false
		},
	})
	p, err := pt.Launch(w, "/bin/prog", []string{"prog"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(p); err != nil {
		t.Fatal(err)
	}
	if p.Exit.Code != 88 {
		t.Fatalf("exit = %+v", p.Exit)
	}
}

func TestPtracerKeepVDSOMissesTimeCalls(t *testing.T) {
	w := interpose.NewWorld()
	w.MustRegister(buildProg())

	var timeCalls int
	pt := ptracer.New(interpose.Config{
		Hook: func(c *interpose.Call) (uint64, bool) {
			if c.Num == kernel.SysGettimeofday {
				timeCalls++
			}
			return 0, false
		},
	})
	pt.KeepVDSO = true
	p, err := pt.Launch(w, "/bin/prog", []string{"prog"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(p); err != nil {
		t.Fatal(err)
	}
	if timeCalls != 0 {
		t.Fatalf("vdso gettimeofday was traced %d times with vdso kept", timeCalls)
	}
}

func TestPtracerIsSlow(t *testing.T) {
	// The cost model must charge stop round trips: a traced process
	// accumulates far more cycles than a native one.
	runCycles := func(traced bool) uint64 {
		w := interpose.NewWorld()
		w.MustRegister(buildProg())
		var l interpose.Launcher = interpose.Native{}
		if traced {
			l = ptracer.New(interpose.Config{})
		}
		p, err := l.Launch(w, "/bin/prog", []string{"prog"}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Run(p); err != nil {
			t.Fatal(err)
		}
		var total uint64
		for _, th := range p.Threads {
			total += th.Cycles()
		}
		return total
	}
	native := runCycles(false)
	traced := runCycles(true)
	if traced < native*3 {
		t.Fatalf("traced %d vs native %d cycles; ptrace overhead not modelled", traced, native)
	}
}
