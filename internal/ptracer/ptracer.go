// Package ptracer implements a ptrace-based interposer: a cross-process
// tracer that observes every system call from the tracee's very first
// instruction — the only commodity mechanism with that property (paper
// §5.2) — at the price of two stop round-trips per call. It is both the
// slow exhaustive baseline and the startup-phase component K23 builds on.
package ptracer

import (
	"k23/internal/cpu"
	"k23/internal/interpose"
	"k23/internal/kernel"
	"k23/internal/loader"
)

// Ptracer is the Launcher.
type Ptracer struct {
	Config interpose.Config
	// KeepVDSO leaves the vdso mapped. By default the ptracer disables
	// it so vdso-reachable calls become real, traceable syscalls.
	KeepVDSO bool
}

// New returns a ptrace launcher.
func New(cfg interpose.Config) *Ptracer {
	return &Ptracer{Config: cfg}
}

// Name implements interpose.Launcher.
func (pt *Ptracer) Name() string { return "ptrace" }

// state is per-process interposition state.
type state struct {
	stats interpose.Stats
	last  map[int]*interpose.Call
}

// tracer adapts the Config to the kernel's Tracer interface.
type tracer struct {
	pt *Ptracer
	st *state
}

var _ kernel.Tracer = (*tracer)(nil)

// SyscallEnter implements kernel.Tracer.
func (tr *tracer) SyscallEnter(k *kernel.Kernel, t *kernel.Thread, nr, site uint64) bool {
	tr.st.stats.Ptraced++
	regs := k.TraceeRegs(t)
	call := &interpose.Call{
		Kernel: k, Thread: t,
		Num:       nr,
		Site:      site,
		Mechanism: interpose.MechPtrace,
	}
	// The handler span covers the enter stop only; the kernel slice that
	// follows lands in the enclosing trap span.
	interpose.Phase(call, kernel.PhHandler)
	for i := range call.Args {
		call.Args[i] = regs.Arg(i)
	}
	tr.st.last[t.TID] = call
	interpose.Observe(call)
	if tr.pt.Config.Hook == nil {
		interpose.Phase(call, kernel.PhForward)
		interpose.Phase(call, kernel.PhHandlerRet)
		return false
	}
	origNum := call.Num
	interpose.Phase(call, kernel.PhHook)
	ret, emulated := tr.pt.Config.Hook(call)
	if emulated {
		interpose.Resolve(call, call.Num, true)
		interpose.Phase(call, kernel.PhEmulate)
		regs.R[cpu.RAX] = ret
		interpose.Phase(call, kernel.PhHandlerRet)
		return true
	}
	if call.Num != origNum {
		interpose.Resolve(call, call.Num, false)
	}
	regs.R[cpu.RAX] = call.Num
	for i, a := range call.Args {
		regs.SetArg(i, a)
	}
	interpose.Phase(call, kernel.PhForward)
	interpose.Phase(call, kernel.PhHandlerRet)
	return false
}

// SyscallExit implements kernel.Tracer.
func (tr *tracer) SyscallExit(k *kernel.Kernel, t *kernel.Thread, nr, ret uint64) {
	if tr.pt.Config.ResultHook == nil {
		return
	}
	call := tr.st.last[t.TID]
	if call == nil {
		call = &interpose.Call{Kernel: k, Thread: t, Num: nr, Mechanism: interpose.MechPtrace}
	}
	newRet := tr.pt.Config.ResultHook(call, ret)
	if newRet != ret {
		k.TraceeRegs(t).R[cpu.RAX] = newRet
	}
}

// Execve implements kernel.Tracer: the plain ptracer stays attached
// across exec (Linux semantics) and does not rewrite the environment.
func (tr *tracer) Execve(k *kernel.Kernel, t *kernel.Thread, path string, argv, env []string) []string {
	return nil
}

// Launch implements interpose.Launcher.
func (pt *Ptracer) Launch(w *interpose.World, path string, argv, env []string) (*kernel.Process, error) {
	st := &state{last: make(map[int]*interpose.Call)}
	opts := []loader.SpawnOption{
		loader.WithTracer(&tracer{pt: pt, st: st}),
		loader.WithPreInit(func(p *kernel.Process, t *kernel.Thread) error {
			p.Interposer = st
			return nil
		}),
	}
	if !pt.KeepVDSO {
		opts = append(opts, loader.WithDisableVDSO())
	}
	return w.L.Spawn(path, argv, env, opts...)
}

// Stats implements interpose.Launcher.
func (pt *Ptracer) Stats(p *kernel.Process) *interpose.Stats {
	st, ok := p.Interposer.(*state)
	if !ok {
		return &interpose.Stats{}
	}
	return &st.stats
}

var _ interpose.Launcher = (*Ptracer)(nil)
