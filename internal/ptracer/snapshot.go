package ptracer

import (
	"k23/internal/interpose"
	"k23/internal/kernel"
)

// Checkpoint support. The ptracer's mutable state lives in the state
// struct attached as Process.Interposer; the tracer adapter itself is a
// stateless pair of pointers into it, so its snapshot carries nothing
// (the kernel snapshots Interposer and tracer independently, and both
// resolve to the same state object).

type hostSnapshot struct {
	stats interpose.Stats
	last  map[int]interpose.Call
}

// SnapshotHostState implements kernel.HostState.
func (st *state) SnapshotHostState() any {
	s := &hostSnapshot{stats: st.stats, last: make(map[int]interpose.Call, len(st.last))}
	for tid, call := range st.last {
		s.last[tid] = *call
	}
	return s
}

// RestoreHostState implements kernel.HostState.
func (st *state) RestoreHostState(v any) {
	s := v.(*hostSnapshot)
	st.stats = s.stats
	st.last = make(map[int]*interpose.Call, len(s.last))
	for tid := range s.last {
		call := s.last[tid]
		st.last[tid] = &call
	}
}

var _ kernel.HostState = (*state)(nil)

// SnapshotHostState implements kernel.HostState (stateless adapter).
func (tr *tracer) SnapshotHostState() any { return nil }

// RestoreHostState implements kernel.HostState.
func (tr *tracer) RestoreHostState(any) {}

var _ kernel.HostState = (*tracer)(nil)
