package fleet

import (
	"context"
	"reflect"
	"testing"

	"k23/internal/apps"
	"k23/internal/interpose"
	"k23/internal/kernel"
	"k23/internal/obsv"
	"k23/internal/rr"
	"k23/internal/sfip"
)

// sfipMachines builds a small interposed fleet (SFIP only bites on
// trap-origin syscalls, so the machines boot under a real interposer,
// not natively). The mechanism must be fully covering — under a leaky
// one like zpoline-ultra, startup-window calls are trap-origin escapes,
// which the learner refuses by design, so even self-training trips
// enforcement. Non-server workloads keep the offline phases short.
func sfipMachines() []Machine {
	return []Machine{
		{Name: "cat-0", Seed: 11, Path: apps.CatPath, Argv: []string{"cat", "/data/notes.txt"}, Mechanism: "k23-ultra+"},
		{Name: "ls-0", Seed: 22, Path: apps.LsPath, Argv: []string{"ls", "/data"}, Mechanism: "k23-ultra+"},
		{Name: "pwd-0", Seed: 33, Path: apps.PwdPath, Argv: []string{"pwd"}, Mechanism: "k23-ultra+"},
	}
}

// learnPolicies trains one policy per machine at the given worker count.
func learnPolicies(t *testing.T, workers int) map[string]*sfip.Policy {
	t.Helper()
	rep, err := Run(context.Background(), sfipMachines(),
		Options{Workers: workers, Hash: true, Obs: obsv.Options{SfipLearn: true}})
	if err != nil {
		t.Fatalf("learn fleet (workers=%d): %v", workers, err)
	}
	if err := rep.FirstErr(); err != nil {
		t.Fatalf("learn fleet (workers=%d): %v", workers, err)
	}
	out := map[string]*sfip.Policy{}
	for i := range rep.Machines {
		m := &rep.Machines[i]
		if m.Obs == nil || m.Obs.SfipPolicy == nil {
			t.Fatalf("machine %s: no learned policy in the snapshot", m.Name)
		}
		out[m.Name] = m.Obs.SfipPolicy
	}
	return out
}

// TestFleetSfipLearnDeterminism: the policy a machine learns is a pure
// function of the machine — hash-identical at workers=1 and workers=8 —
// and interposed machines actually learn something (native machines
// would learn nothing: no trap-origin syscalls).
func TestFleetSfipLearnDeterminism(t *testing.T) {
	serial := learnPolicies(t, 1)
	parallel := learnPolicies(t, 8)
	for name, p := range serial {
		if p.Origins() == 0 || p.Edges() == 0 {
			t.Errorf("machine %s: learned an empty policy (%d origins, %d edges)", name, p.Origins(), p.Edges())
		}
		q, ok := parallel[name]
		if !ok {
			t.Fatalf("machine %s missing from the parallel run", name)
		}
		if p.Hash() != q.Hash() {
			t.Errorf("machine %s: policy hash %#x at workers=1 vs %#x at workers=8", name, p.Hash(), q.Hash())
		}
	}
}

// TestFleetSfipEnforceDeterminism: per-machine policies installed via
// Options.SfipPolicies are checked deterministically — self-trained
// machines run violation-free in enforce mode, with bit-identical
// enforcement reports at workers=1 and workers=8 — and log mode is
// non-perturbing: on a violation-free run, every observable hash matches
// an unpoliced run of the same machines exactly.
func TestFleetSfipEnforceDeterminism(t *testing.T) {
	machines := sfipMachines()
	policies := learnPolicies(t, 8)

	run := func(workers int, mode sfip.Mode) *Report {
		rep, err := Run(context.Background(), machines, Options{
			Workers: workers, Hash: true,
			SfipPolicies: policies, SfipMode: mode,
		})
		if err != nil {
			t.Fatalf("enforce fleet (workers=%d mode=%s): %v", workers, mode, err)
		}
		if err := rep.FirstErr(); err != nil {
			t.Fatalf("enforce fleet (workers=%d mode=%s): %v", workers, mode, err)
		}
		return rep
	}

	serial := run(1, sfip.ModeEnforce)
	parallel := run(8, sfip.ModeEnforce)
	for i := range serial.Machines {
		s, p := &serial.Machines[i], &parallel.Machines[i]
		if s.Obs == nil || s.Obs.Sfip == nil {
			t.Fatalf("machine %s: no enforcement report", s.Name)
		}
		if s.Obs.Sfip.Checked == 0 {
			t.Errorf("machine %s: enforcer checked nothing", s.Name)
		}
		if s.Obs.Sfip.Violations != 0 || s.Obs.Sfip.Denied != 0 {
			t.Errorf("machine %s: self-trained policy tripped: %d violations, %d denied",
				s.Name, s.Obs.Sfip.Violations, s.Obs.Sfip.Denied)
		}
		if !reflect.DeepEqual(s.Obs.Sfip, p.Obs.Sfip) {
			t.Errorf("machine %s: enforcement report differs between workers=1 and workers=8", s.Name)
		}
		if s.TraceHash != p.TraceHash || s.EventHash != p.EventHash || s.VFSHash != p.VFSHash {
			t.Errorf("machine %s: enforced run not bit-identical across worker counts", s.Name)
		}
	}

	// Log mode on the same violation-free machines perturbs nothing.
	plain, err := Run(context.Background(), machines, Options{Workers: 8, Hash: true})
	if err != nil {
		t.Fatalf("unpoliced fleet: %v", err)
	}
	logged := run(8, sfip.ModeLog)
	for i := range plain.Machines {
		u, l := &plain.Machines[i], &logged.Machines[i]
		if u.TraceHash != l.TraceHash || u.EventHash != l.EventHash || u.VFSHash != l.VFSHash {
			t.Errorf("machine %s: log-mode SFIP perturbed execution: unpoliced={%#x %#x %#x} logged={%#x %#x %#x}",
				u.Name, u.TraceHash, u.EventHash, u.VFSHash, l.TraceHash, l.EventHash, l.VFSHash)
		}
		if u.Exit != l.Exit {
			t.Errorf("machine %s: log-mode SFIP changed the exit status", u.Name)
		}
	}
}

// TestFleetSfipChaosReplayStable: with deterministic fault injection
// armed, a policed fleet is a pure function of (machines, policies,
// chaos seed) — identical hashes and enforcement reports across worker
// counts and repeated runs, for two distinct chaos seeds — and a
// recorded policed machine replays bit-identically with the enforcer's
// host state verified through the kernel state hash.
func TestFleetSfipChaosReplayStable(t *testing.T) {
	machines := sfipMachines()
	policies := learnPolicies(t, 8)

	run := func(seed uint64, workers int) []Result {
		prof := kernel.DefaultChaosProfile()
		rep, err := Run(context.Background(), machines, Options{
			Workers: workers, Hash: true, Record: true,
			Chaos: &prof, ChaosSeed: seed,
			// Log mode: chaos retry loops may walk off a policy learned
			// without chaos, and replay stability must hold through the
			// violations themselves, not dodge them by denial.
			SfipPolicies: policies, SfipMode: sfip.ModeLog,
		})
		if err != nil {
			t.Fatalf("chaos fleet (seed=%#x workers=%d): %v", seed, workers, err)
		}
		if err := rep.FirstErr(); err != nil {
			t.Fatalf("chaos fleet (seed=%#x workers=%d): %v", seed, workers, err)
		}
		return normalize(rep)
	}

	for _, seed := range []uint64{3, 7} {
		serial := run(seed, 1)
		parallel := run(seed, 8)
		for i := range serial {
			s, p := &serial[i], &parallel[i]
			if s.TraceHash != p.TraceHash || s.EventHash != p.EventHash || s.VFSHash != p.VFSHash {
				t.Errorf("seed %#x machine %s: policed chaos run differs across worker counts", seed, s.Name)
			}
			if !reflect.DeepEqual(s.Obs.Sfip, p.Obs.Sfip) {
				t.Errorf("seed %#x machine %s: enforcement report differs across worker counts", seed, s.Name)
			}
		}

		// Replay the first machine's recording with the same policy: the
		// rr engine re-checks every checkpoint's kernel state hash, which
		// folds in the enforcer's predecessor chains and counters.
		name := serial[0].Name
		hooks := rr.Hooks{BeforeLaunch: func(w *interpose.World) {
			o := obsv.New(obsv.Options{Machine: name,
				SfipPolicy: policies[name], SfipMode: sfip.ModeLog})
			o.Install(w.K)
		}}
		s, err := rr.Replay(serial[0].Recording, hooks)
		if err != nil {
			t.Fatalf("seed %#x: replay setup: %v", seed, err)
		}
		if err := s.Run(); err != nil {
			t.Fatalf("seed %#x: replay run: %v", seed, err)
		}
		if i, diverged := s.Diverged(); diverged {
			t.Errorf("seed %#x machine %s: policed replay diverged at checkpoint %d", seed, name, i)
		}
	}
}
