package fleet

import (
	"context"
	"reflect"
	"strings"
	"testing"
	"time"

	"k23/internal/asm"
	"k23/internal/cpu"
	"k23/internal/interpose"
	"k23/internal/obsv"
)

// normalize zeroes host-timing fields so Results compare exactly.
func normalize(rep *Report) []Result {
	out := append([]Result(nil), rep.Machines...)
	for i := range out {
		out[i].Wall = 0
	}
	return out
}

// TestFleetDeterminism is the correctness spine of the fleet executor:
// the same machine configurations must produce bit-identical observable
// results — step-trace hash, kernel event stream hash, exit status, VFS
// tree hash, step and syscall counts, decode-cache counters — at
// workers=1 and workers=8, and across repeated workers=8 runs. Under
// `go test -race` this also proves no two Worlds share mutable state.
func TestFleetDeterminism(t *testing.T) {
	machines := StandardFleet(12)
	run := func(workers int) []Result {
		rep, err := Run(context.Background(), machines, Options{Workers: workers, Hash: true})
		if err != nil {
			t.Fatalf("fleet run (workers=%d): %v", workers, err)
		}
		if err := rep.FirstErr(); err != nil {
			t.Fatalf("fleet run (workers=%d): %v", workers, err)
		}
		return normalize(rep)
	}
	serial := run(1)
	parallel := run(8)
	again := run(8)

	for i := range serial {
		if !reflect.DeepEqual(serial[i], parallel[i]) {
			t.Errorf("machine %s differs between workers=1 and workers=8:\n w1: %+v\n w8: %+v",
				serial[i].Name, serial[i], parallel[i])
		}
	}
	if !reflect.DeepEqual(parallel, again) {
		t.Errorf("repeated workers=8 runs differ:\n first: %+v\nsecond: %+v", parallel, again)
	}
	for i := range serial {
		if serial[i].TraceHash == 0 || serial[i].Steps == 0 {
			t.Errorf("machine %s: empty trace (hash=%#x steps=%d) — hashing not wired?",
				serial[i].Name, serial[i].TraceHash, serial[i].Steps)
		}
	}
}

// TestFleetTracingDeterminism is the observability half of the
// determinism contract: with every collector on — flight recorder
// (deliberately small ring to force wraparound), metrics, profiler —
// per-machine results including the full retained event stream must be
// bit-identical at workers=1 and workers=8, and identical to the hashes
// of an untraced run (observers must not perturb execution). Under
// `go test -race` this also proves the per-World recorders share no
// state.
func TestFleetTracingDeterminism(t *testing.T) {
	machines := StandardFleet(12)
	obs := Options{
		Workers: 1,
		Hash:    true,
		// ring 128 guarantees wraparound; a short sampling period makes
		// even the quickest workloads (pwd) collect profile samples.
		Obs: obsv.Options{Trace: true, RingSize: 128, Metrics: true, ProfileEvery: 256},
	}
	run := func(workers int) []Result {
		o := obs
		o.Workers = workers
		rep, err := Run(context.Background(), machines, o)
		if err != nil {
			t.Fatalf("fleet run (workers=%d): %v", workers, err)
		}
		if err := rep.FirstErr(); err != nil {
			t.Fatalf("fleet run (workers=%d): %v", workers, err)
		}
		return normalize(rep)
	}
	serial := run(1)
	parallel := run(8)

	for i := range serial {
		if !reflect.DeepEqual(serial[i], parallel[i]) {
			t.Errorf("machine %s (traced) differs between workers=1 and workers=8", serial[i].Name)
		}
	}

	// Observers must not perturb the simulation: hashes match an
	// untraced run exactly.
	plain, err := Run(context.Background(), machines, Options{Workers: 8, Hash: true})
	if err != nil {
		t.Fatalf("untraced fleet run: %v", err)
	}
	for i := range serial {
		p := plain.Machines[i]
		s := serial[i]
		if s.TraceHash != p.TraceHash || s.EventHash != p.EventHash || s.VFSHash != p.VFSHash {
			t.Errorf("machine %s: tracing perturbed execution: traced={%#x %#x %#x} plain={%#x %#x %#x}",
				s.Name, s.TraceHash, s.EventHash, s.VFSHash, p.TraceHash, p.EventHash, p.VFSHash)
		}
	}

	// Ring wraparound drops oldest-first with an observable monotonic
	// sequence gap.
	sawWrap := false
	for i := range serial {
		o := serial[i].Obs
		if o == nil || len(o.Trace) == 0 {
			t.Errorf("machine %s: no trace collected", serial[i].Name)
			continue
		}
		for j := 1; j < len(o.Trace); j++ {
			if o.Trace[j].Seq <= o.Trace[j-1].Seq {
				t.Fatalf("machine %s: trace seq not monotonic at %d: %d then %d",
					serial[i].Name, j, o.Trace[j-1].Seq, o.Trace[j].Seq)
			}
		}
		last := o.Trace[len(o.Trace)-1]
		if last.Seq != o.TraceSeq-1 {
			t.Errorf("machine %s: newest record seq %d, want %d (newest retained)",
				serial[i].Name, last.Seq, o.TraceSeq-1)
		}
		if o.TraceSeq > uint64(len(o.Trace)) {
			sawWrap = true
			wantFirst := o.TraceSeq - 128 // ring capacity
			if o.Trace[0].Seq != wantFirst {
				t.Errorf("machine %s: after wraparound first seq %d, want %d (oldest-first drop)",
					serial[i].Name, o.Trace[0].Seq, wantFirst)
			}
			if len(o.Trace) != 128 {
				t.Errorf("machine %s: wrapped ring retains %d records, want 128",
					serial[i].Name, len(o.Trace))
			}
		}
		if o.Metrics == nil || o.Metrics.TotalSyscalls() == 0 {
			t.Errorf("machine %s: no metrics collected", serial[i].Name)
		}
		if o.Profile == nil || o.Profile.TotalSamples() == 0 {
			t.Errorf("machine %s: no profile samples", serial[i].Name)
		}
	}
	if !sawWrap {
		t.Error("no machine wrapped the 128-entry ring — test lost its wraparound coverage")
	}

	// The merged fleet view aggregates every machine.
	rep := &Report{Machines: serial}
	merged := rep.MergedObs()
	if merged == nil || merged.Metrics == nil {
		t.Fatal("MergedObs returned no metrics")
	}
	var want uint64
	for i := range serial {
		want += serial[i].Obs.Metrics.TotalSyscalls()
	}
	if got := merged.Metrics.TotalSyscalls(); got != want {
		t.Errorf("merged syscall total %d, want %d", got, want)
	}
}

// TestFleetJITDeterminism is the fleet half of the superblock-engine
// contract: with the JIT on (the default), per-machine results must be
// bit-identical at workers=1 and workers=8 — under `go test -race` this
// also proves the per-core block caches share no state — and the
// observable hash set (trace, events, VFS, exit, steps, syscalls) must
// equal a JIT-off fleet's exactly. Full Results deliberately do NOT
// DeepEqual across modes: the engine-internal counters (DecodeCache,
// JIT) differ, which the test also pins so a future refactor can't
// quietly make the comparison vacuous.
func TestFleetJITDeterminism(t *testing.T) {
	machines := StandardFleet(12)
	run := func(workers int, jitOff bool) []Result {
		rep, err := Run(context.Background(), machines,
			Options{Workers: workers, Hash: true, JITOff: jitOff})
		if err != nil {
			t.Fatalf("fleet run (workers=%d jitOff=%v): %v", workers, jitOff, err)
		}
		if err := rep.FirstErr(); err != nil {
			t.Fatalf("fleet run (workers=%d jitOff=%v): %v", workers, jitOff, err)
		}
		return normalize(rep)
	}
	serial := run(1, false)
	parallel := run(8, false)
	for i := range serial {
		if !reflect.DeepEqual(serial[i], parallel[i]) {
			t.Errorf("machine %s (JIT on) differs between workers=1 and workers=8:\n w1: %+v\n w8: %+v",
				serial[i].Name, serial[i], parallel[i])
		}
	}

	interp := run(8, true)
	var jitEngaged bool
	for i := range serial {
		j, s := serial[i], interp[i]
		if j.TraceHash != s.TraceHash || j.EventHash != s.EventHash ||
			j.VFSHash != s.VFSHash || j.Exit != s.Exit ||
			j.Steps != s.Steps || j.Syscalls != s.Syscalls {
			t.Errorf("machine %s: observables differ between JIT and interpreter:\n jit: %+v\ninterp: %+v",
				j.Name, j, s)
		}
		if j.JIT.Entries > 0 {
			jitEngaged = true
		}
		if s.JIT != (cpu.JITStats{}) {
			t.Errorf("machine %s: JIT-off run recorded engine activity: %+v", s.Name, s.JIT)
		}
	}
	if !jitEngaged {
		t.Error("no machine entered a superblock — the JIT-mode comparison is vacuous")
	}
}

// TestFleetSeedsIndividualizeMachines: two machines running the same
// program with different seeds must be observably different (the seed
// shifts the virtual clock, and servers get seed-derived payloads),
// while the same seed reproduces the machine exactly.
func TestFleetSeedsIndividualizeMachines(t *testing.T) {
	mk := func(name string, seed uint64) Machine {
		m := StandardFleet(9)[8] // redis, a server workload
		m.Name, m.Seed = name, seed
		return m
	}
	machines := []Machine{mk("a", 1), mk("b", 2), mk("c", 1)}
	rep, err := Run(context.Background(), machines, Options{Workers: 3, Hash: true})
	if err != nil {
		t.Fatalf("fleet run: %v", err)
	}
	if err := rep.FirstErr(); err != nil {
		t.Fatal(err)
	}
	a, b, c := rep.Machines[0], rep.Machines[1], rep.Machines[2]
	if a.EventHash == b.EventHash && a.TraceHash == b.TraceHash && a.VFSHash == b.VFSHash {
		t.Errorf("seeds 1 and 2 produced identical machines (event=%#x trace=%#x vfs=%#x)",
			a.EventHash, a.TraceHash, a.VFSHash)
	}
	if a.EventHash != c.EventHash || a.TraceHash != c.TraceHash || a.VFSHash != c.VFSHash {
		t.Errorf("same seed diverged: a={%#x %#x %#x} c={%#x %#x %#x}",
			a.EventHash, a.TraceHash, a.VFSHash, c.EventHash, c.TraceHash, c.VFSHash)
	}
}

// spinMachine is a guest that never exits: the wedged-guest scenario.
func spinMachine(name string, maxInsts uint64) Machine {
	return Machine{
		Name:     name,
		Seed:     7,
		Path:     "/bin/spin",
		Argv:     []string{"spin"},
		MaxInsts: maxInsts,
		Setup: func(w *interpose.World) error {
			b := asm.NewBuilder("/bin/spin")
			tx := b.Text()
			tx.Label("_start")
			tx.Label(".l")
			tx.Jmp(".l")
			w.MustRegister(b.MustBuild())
			return nil
		},
	}
}

// TestFleetCancellation: a wedged guest must not stall the pool — the
// context deadline reclaims its worker, and machines that already ran
// keep their results.
func TestFleetCancellation(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	machines := []Machine{
		StandardFleet(1)[0],        // pwd: completes immediately
		spinMachine("spin", 1<<62), // wedged until the deadline
	}
	rep, err := Run(ctx, machines, Options{Workers: 2})
	if err != nil {
		t.Fatalf("fleet run: %v", err)
	}
	if rep.Machines[0].Err != "" {
		t.Errorf("healthy machine failed: %s", rep.Machines[0].Err)
	}
	if rep.Machines[1].Err == "" || !strings.Contains(rep.Machines[1].Err, "context deadline") {
		t.Errorf("wedged machine: got err %q, want context deadline", rep.Machines[1].Err)
	}
}

// TestFleetBudget: a machine that exhausts its instruction budget
// reports the exhaustion instead of hanging.
func TestFleetBudget(t *testing.T) {
	rep, err := Run(context.Background(),
		[]Machine{spinMachine("spin", 1_000_000)}, Options{Workers: 1})
	if err != nil {
		t.Fatalf("fleet run: %v", err)
	}
	if got := rep.Machines[0].Err; !strings.Contains(got, "budget exhausted") {
		t.Errorf("got err %q, want budget exhaustion", got)
	}
}

// TestSeedPayload: the seed-derived payload is deterministic per seed
// and distinct across seeds.
func TestSeedPayload(t *testing.T) {
	a := seedPayload(42, 64)
	b := seedPayload(42, 64)
	c := seedPayload(43, 64)
	if string(a) != string(b) {
		t.Error("same seed produced different payloads")
	}
	if string(a) == string(c) {
		t.Error("different seeds produced identical payloads")
	}
	for i, ch := range a {
		if ch < 'A' || ch > 'Z' {
			t.Fatalf("payload byte %d out of range: %q", i, ch)
		}
	}
}

// TestStandardFleetStable: fleet construction itself is deterministic.
func TestStandardFleetStable(t *testing.T) {
	a := StandardFleet(7)
	b := StandardFleet(7)
	for i := range a {
		a[i].Setup, b[i].Setup = nil, nil // func values don't compare
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("StandardFleet is not stable across calls")
	}
}

// TestReportAggregates: aggregate arithmetic over a synthetic report.
func TestReportAggregates(t *testing.T) {
	rep := &Report{
		Workers: 2,
		Wall:    2 * time.Second,
		Machines: []Result{
			{Name: "a", Steps: 3_000_000, Syscalls: 10},
			{Name: "b", Steps: 1_000_000, Syscalls: 32},
		},
	}
	if got := rep.TotalSteps(); got != 4_000_000 {
		t.Errorf("TotalSteps = %d, want 4000000", got)
	}
	if got := rep.TotalSyscalls(); got != 42 {
		t.Errorf("TotalSyscalls = %d, want 42", got)
	}
	if got := rep.StepsPerSec(); got != 2_000_000 {
		t.Errorf("StepsPerSec = %v, want 2e6", got)
	}
	if got := rep.MachinesPerSec(); got != 1 {
		t.Errorf("MachinesPerSec = %v, want 1", got)
	}
	out := rep.Format()
	for _, want := range []string{"a", "b", "2 machines", "2 workers"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format() missing %q:\n%s", want, out)
		}
	}
}
