// Package fleet is the sharded multi-machine executor: it runs N
// independent simulated machines (interpose.World instances) across a
// bounded pool of host worker goroutines, with per-machine deterministic
// seeds, per-machine statistics, and context-based cancellation so one
// wedged guest cannot stall the pool.
//
// The package's correctness contract is the no-shared-state invariant:
// two Worlds never alias mutable state, so running machines concurrently
// is race-free by construction and — because each machine is itself a
// deterministic single-goroutine simulation — the observable result of
// every machine (step-trace hash, kernel event stream, exit status, VFS
// tree hash) is identical regardless of the worker count. The fleet
// determinism tests and `go test -race ./...` enforce both halves.
package fleet

import (
	"context"
	"fmt"
	"hash/fnv"
	"runtime"
	"strings"
	"sync"
	"time"

	"k23/internal/apps"
	"k23/internal/core"
	"k23/internal/cpu"
	"k23/internal/cpu/difftest"
	"k23/internal/interpose"
	"k23/internal/interpose/variants"
	"k23/internal/kernel"
	"k23/internal/obsv"
	"k23/internal/probe"
	"k23/internal/rr"
	"k23/internal/sfip"
)

// Machine describes one simulated machine: a program to boot and the
// seed that individualizes the machine deterministically.
type Machine struct {
	// Name identifies the machine in reports (unique names recommended).
	Name string
	// Seed individualizes the machine: it derives the kernel's initial
	// virtual clock (shifting gettimeofday/getrandom streams) and the
	// injected request payload for server workloads. The same seed always
	// produces the same machine.
	Seed uint64
	// Path and Argv name the program to boot.
	Path string
	Argv []string
	Env  []string
	// Mechanism, when non-empty, boots the machine under the named
	// interposer variant (variants.ByName) instead of natively, running
	// the variant's offline phase on the same machine first when it
	// needs a log. Per-machine SFIP policies (Options.SfipPolicies) only
	// bite on interposed machines: native machines never issue
	// trap-origin syscalls.
	Mechanism string
	// Server marks a workload driven by an injected client connection.
	Server bool
	// Requests is the number of requests per injected connection
	// (servers only).
	Requests int
	// MaxInsts bounds the run; 0 means DefaultMaxInsts.
	MaxInsts uint64
	// Setup, if non-nil, replaces the default world preparation
	// (apps.RegisterAll + apps.SetupFS). It must be self-contained: it
	// may not capture mutable state shared with any other machine.
	Setup func(w *interpose.World) error
}

// DefaultMaxInsts is the per-machine instruction budget when
// Machine.MaxInsts is zero.
const DefaultMaxInsts = 500_000_000

// ctxCheckInterval is how many instructions a machine retires between
// cancellation checks. Small enough that a wedged guest is reclaimed
// promptly, large enough to be invisible in throughput.
const ctxCheckInterval = 2_000_000

// Result is the observable outcome and statistics of one machine.
type Result struct {
	Name string
	Seed uint64

	// TraceHash is the FNV-1a hash of the (tid, rip, op) retired-
	// instruction stream, 0 unless Options.Hash was set.
	TraceHash uint64
	// EventHash hashes the kernel event stream (always computed).
	EventHash uint64
	// Steps counts retired guest instructions.
	Steps uint64
	// Syscalls counts syscall-entry kernel events.
	Syscalls uint64
	// Exit is how the booted process finished.
	Exit kernel.ExitInfo
	// VFSHash hashes the final filesystem tree.
	VFSHash uint64
	// ChaosInjected counts fault-injector perturbations (0 when the run
	// had no chaos profile).
	ChaosInjected uint64
	// DecodeCache aggregates decode-cache counters over every core.
	DecodeCache cpu.DecodeCacheStats
	// JIT aggregates superblock-engine counters over every core (all
	// zero when Options.JITOff disabled the engine).
	JIT cpu.JITStats
	// Wall is the host wall-clock time this machine took.
	Wall time.Duration
	// Err is a machine-level failure (spawn error, budget exhaustion,
	// cancellation), as a string so Results compare with ==.
	Err string
	// Obs carries the machine's observability snapshot (flight-recorder
	// trace, metrics, profile), nil unless Options.Obs enabled a
	// collector. Each machine owns its Observer — the no-shared-state
	// invariant — and snapshots are merged only at report time.
	Obs *obsv.Snapshot
	// Recording is the machine's replayable record (frontier, event
	// stream, checkpoints, final state), nil unless Options.Record was
	// set. Feed it to rr.Replay or write it out with rr.WriteJSONL.
	Recording *rr.Recording
}

// Options configures a fleet run.
type Options struct {
	// Workers bounds the worker pool; <=0 means GOMAXPROCS.
	Workers int
	// Hash enables per-instruction trace hashing (Result.TraceHash).
	// It costs a function call per retired instruction, so throughput
	// benchmarks leave it off; determinism tests turn it on.
	Hash bool
	// Obs selects per-machine observability collectors (flight
	// recorder, metrics, profiler). The zero value installs nothing.
	Obs obsv.Options
	// JITOff disables the trace-JIT superblock engine on every machine
	// (kernel.WithJITOff), leaving only the decode cache. The observable
	// hashes are bit-identical either way — TestFleetJITDeterminism
	// enforces it — so this is a diagnostic/benchmark knob, not a
	// semantic one.
	JITOff bool
	// Chaos, when non-nil, arms deterministic fault injection on every
	// machine. Each machine's injector seed is derived from its own
	// Machine.Seed xor ChaosSeed, so a fleet replays bit-identically at
	// any worker count and two sweeps with different ChaosSeed values
	// explore different perturbation schedules.
	Chaos *kernel.ChaosProfile
	// ChaosSeed salts the per-machine chaos seed derivation.
	ChaosSeed uint64
	// Record captures each machine as a replayable recording
	// (Result.Recording). Recorded machines are driven by the rr
	// engine's canonical run slicing — the schedule a later replay
	// reproduces — so for multi-threaded guests the hashes of a
	// recorded fleet are self-consistent but need not match an
	// unrecorded run of the same machines. The frontier derivations
	// (virtual clock, payload, chaos seed) are shared with the normal
	// path, and trace hashing is always on under Record. Machines with
	// a custom Setup cannot be recorded and report an error.
	Record bool
	// CheckpointEvery is the recorded checkpoint interval in virtual
	// ticks (0 = the rr default); only meaningful with Record.
	CheckpointEvery uint64
	// SfipPolicies maps machine names to SFIP policies: a machine whose
	// name has an entry gets an enforcer for that policy in SfipMode
	// (per-app policies, the paper's deployment model). Machines without
	// an entry run unpoliced.
	SfipPolicies map[string]*sfip.Policy
	// SfipMode is the enforcement posture for SfipPolicies.
	SfipMode sfip.Mode
	// Probes runs a compiled probe program (internal/probe) on every
	// machine. The Compiled is immutable and shared read-only; each
	// machine instantiates its own engine keyed by machine name and
	// mechanism, and per-machine snapshots merge commutatively in
	// MergedObs — so probe output is bit-identical at any worker count.
	Probes *probe.Compiled
}

// Report aggregates a fleet run.
type Report struct {
	Workers  int
	Machines []Result
	// Wall is the whole-fleet host wall-clock time.
	Wall time.Duration
}

// TotalSteps sums retired instructions over the fleet.
func (r *Report) TotalSteps() uint64 {
	var n uint64
	for i := range r.Machines {
		n += r.Machines[i].Steps
	}
	return n
}

// TotalSyscalls sums syscall counts over the fleet.
func (r *Report) TotalSyscalls() uint64 {
	var n uint64
	for i := range r.Machines {
		n += r.Machines[i].Syscalls
	}
	return n
}

// StepsPerSec is the aggregate simulation throughput in retired guest
// instructions per host second.
func (r *Report) StepsPerSec() float64 {
	if r.Wall <= 0 {
		return 0
	}
	return float64(r.TotalSteps()) / r.Wall.Seconds()
}

// MachinesPerSec is the fleet completion rate.
func (r *Report) MachinesPerSec() float64 {
	if r.Wall <= 0 {
		return 0
	}
	return float64(len(r.Machines)) / r.Wall.Seconds()
}

// MergedObs folds every machine's observability snapshot into one
// fleet-wide view: histograms add bucketwise, mechanism and decode-cache
// counters sum, traces concatenate in machine order. Returns nil when no
// machine collected anything.
func (r *Report) MergedObs() *obsv.Snapshot {
	var merged *obsv.Snapshot
	for i := range r.Machines {
		if r.Machines[i].Obs == nil {
			continue
		}
		if merged == nil {
			merged = &obsv.Snapshot{}
		}
		merged.Merge(r.Machines[i].Obs)
	}
	return merged
}

// FirstErr returns the first machine error in fleet order, if any.
func (r *Report) FirstErr() error {
	for i := range r.Machines {
		if r.Machines[i].Err != "" {
			return fmt.Errorf("fleet: machine %s: %s", r.Machines[i].Name, r.Machines[i].Err)
		}
	}
	return nil
}

// Format renders the per-machine table and the aggregate line.
func (r *Report) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-20s %-12s %-10s %-9s %-9s %-10s %s\n",
		"Machine", "steps", "syscalls", "hit-rate", "wall", "exit", "err")
	for i := range r.Machines {
		m := &r.Machines[i]
		exit := "-"
		if m.Err == "" {
			exit = fmt.Sprintf("code=%d", m.Exit.Code)
			if m.Exit.Signal != 0 {
				exit = fmt.Sprintf("sig=%d", m.Exit.Signal)
			}
		}
		fmt.Fprintf(&b, "%-20s %-12d %-10d %-9s %-9s %-10s %s\n",
			m.Name, m.Steps, m.Syscalls,
			fmt.Sprintf("%.1f%%", m.DecodeCache.HitRate()*100),
			m.Wall.Round(time.Millisecond), exit, m.Err)
	}
	fmt.Fprintf(&b, "fleet: %d machines, %d workers, %.2fM steps/s aggregate, %.1f machines/s, wall %s\n",
		len(r.Machines), r.Workers, r.StepsPerSec()/1e6, r.MachinesPerSec(), r.Wall.Round(time.Millisecond))
	return b.String()
}

// splitmix64 is the seed-expansion PRNG (public-domain constants); it
// derives per-machine payloads and clock offsets from Machine.Seed.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// seedPayload derives a deterministic request payload from the seed.
func seedPayload(seed uint64, n int) []byte {
	b := make([]byte, n)
	s := splitmix64(seed)
	for i := range b {
		s = splitmix64(s)
		b[i] = 'A' + byte(s%26)
	}
	return b
}

// Run executes the fleet across the worker pool and returns the report.
// Results are indexed in machine order regardless of completion order.
// Cancelling the context stops every machine at its next check point;
// cancelled machines report Err = context.Canceled's message.
func Run(ctx context.Context, machines []Machine, opt Options) (*Report, error) {
	if len(machines) == 0 {
		return nil, fmt.Errorf("fleet: no machines")
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(machines) {
		workers = len(machines)
	}

	results := make([]Result, len(machines))
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				results[i] = runMachine(ctx, machines[i], opt)
			}
		}()
	}
	start := time.Now()
	for i := range machines {
		idx <- i
	}
	close(idx)
	wg.Wait()

	return &Report{
		Workers:  workers,
		Machines: results,
		Wall:     time.Since(start),
	}, nil
}

// runMachine boots and drives one machine to completion on the calling
// goroutine. Everything it touches is private to the machine's World.
func runMachine(ctx context.Context, m Machine, opt Options) Result {
	res := Result{Name: m.Name, Seed: m.Seed}
	start := time.Now()
	defer func() { res.Wall = time.Since(start) }()
	if err := ctx.Err(); err != nil {
		res.Err = err.Error()
		return res
	}
	if opt.Record {
		runRecorded(m, opt, &res)
		return res
	}

	// One virtual-clock second per seed step keeps the offset well clear
	// of wrap-around while making gettimeofday visibly seed-dependent.
	kopts := []kernel.Option{kernel.WithVClock(splitmix64(m.Seed) % (1 << 40))}
	if opt.JITOff {
		kopts = append(kopts, kernel.WithJITOff(true))
	}
	if opt.Chaos != nil {
		kopts = append(kopts, kernel.WithChaos(splitmix64(m.Seed^opt.ChaosSeed), *opt.Chaos))
	}
	world := interpose.NewWorld(kopts...)
	if m.Setup != nil {
		if err := m.Setup(world); err != nil {
			res.Err = err.Error()
			return res
		}
	} else {
		apps.RegisterAll(world.Reg)
		if err := apps.SetupFS(world.K.FS); err != nil {
			res.Err = err.Error()
			return res
		}
	}

	eh := fnv.New64a()
	world.K.EventHook = func(e kernel.Event) {
		if e.Kind == kernel.EvEnter {
			res.Syscalls++
		}
		fmt.Fprintf(eh, "%d/%d %s %d %#x %#x %s\n", e.PID, e.TID, e.Kind, e.Num, e.Site, e.Ret, e.Detail)
	}
	var th *fnvHasher
	if opt.Hash {
		th = newFNVHasher()
		world.K.StepTrace = func(tid int, rip uint64, op cpu.Op) {
			th.write(uint64(tid), rip, uint64(op))
		}
	}
	// Resolve the boot path: native spawn, or launch under the machine's
	// interposer variant — running the variant's offline phase first when
	// it needs a log.
	launch := func() (*kernel.Process, error) { return world.L.Spawn(m.Path, m.Argv, m.Env) }
	if m.Mechanism != "" {
		spec, ok := variants.ByName(m.Mechanism)
		if !ok {
			res.Err = fmt.Sprintf("unknown mechanism %q", m.Mechanism)
			return res
		}
		logPath := ""
		if spec.NeedsOfflineLog {
			off := &core.Offline{LogDir: "/var/k23/logs"}
			run, err := off.Start(world, m.Path, m.Argv, m.Env)
			if err != nil {
				res.Err = err.Error()
				return res
			}
			_ = world.K.RunUntilExit(run.Process(), DefaultMaxInsts)
			if _, err := run.Finish(); err != nil {
				res.Err = err.Error()
				return res
			}
			logPath = off.LogPath(m.Path[strings.LastIndexByte(m.Path, '/')+1:])
		}
		l := spec.New(interpose.Config{}, logPath)
		launch = func() (*kernel.Process, error) { return l.Launch(world, m.Path, m.Argv, m.Env) }
	}

	var obs *obsv.Observer
	oo := opt.Obs
	oo.Machine = m.Name
	if p := opt.SfipPolicies[m.Name]; p != nil {
		oo.SfipPolicy = p
		oo.SfipMode = opt.SfipMode
	}
	if opt.Probes != nil {
		oo.Probes = opt.Probes
		oo.ProbeMech = probeMech(m)
	}
	if oo.Enabled() {
		// Installed after the hash hook so AddEventHook chains both, and
		// after any offline phase — the controlled environment the audit
		// and SFIP layers deliberately exclude, the same attach point the
		// k23 CLI and the PoC matrix use. The observer is private to this
		// World, keeping the machine race-free and bit-identical at any
		// worker count. Span sets are keyed by machine name so a fleet
		// merge stays deterministic.
		obs = obsv.New(oo)
		obs.Install(world.K)
	}

	p, err := launch()
	if err != nil {
		res.Err = err.Error()
		return res
	}

	maxInsts := m.MaxInsts
	if maxInsts == 0 {
		maxInsts = DefaultMaxInsts
	}
	var retired uint64
	if m.Server {
		if err := inject(ctx, world, p, m, &retired, maxInsts); err != nil {
			res.Err = err.Error()
			return res
		}
	}
	for p.State == kernel.ProcRunning {
		if err := ctx.Err(); err != nil {
			res.Err = err.Error()
			return res
		}
		if retired >= maxInsts {
			res.Err = fmt.Sprintf("budget exhausted after %d instructions", retired)
			return res
		}
		slice := minU64(ctxCheckInterval, maxInsts-retired)
		n := world.K.Run(slice)
		retired += n
		if n == 0 && p.State == kernel.ProcRunning {
			res.Err = fmt.Sprintf("deadlock: pid %d has no runnable threads", p.PID)
			return res
		}
	}

	res.Exit = p.Exit
	res.EventHash = eh.Sum64()
	if th != nil {
		res.TraceHash = th.sum()
	}
	res.VFSHash = difftest.HashFS(world.K.FS)
	res.ChaosInjected = world.K.ChaosInjected()
	res.DecodeCache = world.K.DecodeCacheStats()
	res.JIT = world.K.JITStats()
	if obs != nil {
		res.Obs = obs.Snapshot()
	}
	for _, proc := range world.K.Processes() {
		for _, t := range proc.Threads {
			res.Steps += t.Core.Insts
		}
	}
	return res
}

// runRecorded drives one machine through the rr engine, producing a
// replayable recording alongside the usual result fields. The rr
// session owns scheduling (its canonical slices are what a replay will
// reproduce); the fleet keeps ownership of worker placement and
// reporting.
func runRecorded(m Machine, opt Options, res *Result) {
	if m.Setup != nil {
		res.Err = "record: custom Setup not supported"
		return
	}
	spec := rr.RunSpec{
		Name: m.Name, Mechanism: m.Mechanism,
		Path: m.Path, Argv: m.Argv, Env: m.Env,
		Server: m.Server, Requests: m.Requests,
		Seed: m.Seed, MaxInsts: m.MaxInsts,
		Chaos: opt.Chaos, ChaosSeed: opt.ChaosSeed,
		CheckpointEvery: opt.CheckpointEvery,
	}
	var obs *obsv.Observer
	hooks := rr.Hooks{}
	oo := opt.Obs
	oo.Machine = m.Name
	if p := opt.SfipPolicies[m.Name]; p != nil {
		oo.SfipPolicy = p
		oo.SfipMode = opt.SfipMode
	}
	if opt.Probes != nil {
		oo.Probes = opt.Probes
		oo.ProbeMech = probeMech(m)
	}
	if oo.Enabled() {
		hooks.BeforeLaunch = func(w *interpose.World) {
			obs = obsv.New(oo)
			obs.Install(w.K)
		}
	}
	s, err := rr.Record(spec, hooks)
	if err != nil {
		res.Err = err.Error()
		return
	}
	if err := s.Run(); err != nil {
		res.Err = err.Error()
		return
	}
	f := s.Rec.Final
	res.Recording = s.Rec
	res.TraceHash = f.TraceHash
	res.EventHash = f.EventHash
	res.VFSHash = f.VFSHash
	res.Steps = f.Steps
	res.Syscalls = f.Syscalls
	res.Exit = kernel.ExitInfo{Code: f.ExitCode, Signal: f.ExitSignal}
	res.ChaosInjected = f.ChaosInjected
	res.DecodeCache = s.W.K.DecodeCacheStats()
	res.JIT = s.W.K.JITStats()
	if obs != nil {
		res.Obs = obs.Snapshot()
	}
}

// probeMech is the static mechanism context a machine's probe engine
// reports for the `mech` field on streams that do not carry one.
func probeMech(m Machine) string {
	if m.Mechanism != "" {
		return m.Mechanism
	}
	return "native"
}

// inject waits for the server to listen and queues one keepalive
// connection carrying the machine's seed-derived request payload.
func inject(ctx context.Context, world *interpose.World, p *kernel.Process, m Machine, retired *uint64, maxInsts uint64) error {
	req := seedPayload(m.Seed, apps.RequestSize)
	port := apps.BasePort + p.PID
	for i := 0; i < 5000; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		if *retired >= maxInsts {
			return fmt.Errorf("budget exhausted while waiting for listen")
		}
		*retired += world.K.Run(10_000)
		if err := world.K.InjectConn(port, req, m.Requests, nil); err == nil {
			return nil
		}
	}
	return fmt.Errorf("server on port %d never listened", port)
}

func minU64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// fnvHasher is an allocation-free FNV-1a accumulator for the trace
// stream (hash.Hash64's Write path allocates via the interface).
type fnvHasher struct{ h uint64 }

func newFNVHasher() *fnvHasher { return &fnvHasher{h: 14695981039346656037} }

func (f *fnvHasher) write(vs ...uint64) {
	h := f.h
	for _, v := range vs {
		for i := 0; i < 8; i++ {
			h ^= uint64(byte(v >> (8 * i)))
			h *= 1099511628211
		}
	}
	f.h = h
}

func (f *fnvHasher) sum() uint64 { return f.h }

// StandardFleet builds n machines cycling through the app workload
// matrix (the Table 2 set), seeded deterministically: machine i always
// gets the same workload and seed, so any prefix of the fleet is a
// stable regression surface.
func StandardFleet(n int) []Machine {
	base := difftest.AppWorkloads()
	out := make([]Machine, 0, n)
	for i := 0; i < n; i++ {
		w := base[i%len(base)]
		out = append(out, Machine{
			Name:     fmt.Sprintf("%s-%02d", w.Name, i),
			Seed:     uint64(i)*0x9e3779b97f4a7c15 + 1,
			Path:     w.Path,
			Argv:     w.Argv,
			Server:   w.Server,
			Requests: w.Requests,
		})
	}
	return out
}
