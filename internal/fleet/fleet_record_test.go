package fleet

import (
	"context"
	"testing"

	"k23/internal/interpose"
	"k23/internal/rr"
)

// TestFleetRecord proves Options.Record attaches a valid, replayable
// recording to every machine: each recording validates, replays without
// divergence, and the replay's final state matches the fleet result's
// own hashes.
func TestFleetRecord(t *testing.T) {
	machines := StandardFleet(4)
	rep, err := Run(context.Background(), machines, Options{
		Workers: 2, Record: true, CheckpointEvery: 30_000,
	})
	if err != nil {
		t.Fatalf("fleet run: %v", err)
	}
	if err := rep.FirstErr(); err != nil {
		t.Fatalf("fleet run: %v", err)
	}
	for i := range rep.Machines {
		m := &rep.Machines[i]
		if m.Recording == nil {
			t.Fatalf("machine %s: no recording", m.Name)
		}
		if err := m.Recording.Validate(); err != nil {
			t.Fatalf("machine %s: invalid recording: %v", m.Name, err)
		}
		f := m.Recording.Final
		if f.TraceHash != m.TraceHash || f.EventHash != m.EventHash || f.VFSHash != m.VFSHash {
			t.Fatalf("machine %s: result hashes disagree with recording final", m.Name)
		}
		s, err := rr.Replay(m.Recording, rr.Hooks{})
		if err != nil {
			t.Fatalf("machine %s: Replay: %v", m.Name, err)
		}
		if err := s.Run(); err != nil {
			t.Fatalf("machine %s: replay run: %v", m.Name, err)
		}
		if idx, d := s.Diverged(); d {
			t.Fatalf("machine %s: replay diverged at checkpoint %d", m.Name, idx)
		}
	}
}

// TestFleetRecordDeterministic: a recorded fleet is still worker-count
// invariant — same recordings at workers=1 and workers=4.
func TestFleetRecordDeterministic(t *testing.T) {
	machines := StandardFleet(4)
	run := func(workers int) *Report {
		rep, err := Run(context.Background(), machines, Options{
			Workers: workers, Record: true, CheckpointEvery: 30_000,
		})
		if err != nil {
			t.Fatalf("fleet run (workers=%d): %v", workers, err)
		}
		return rep
	}
	a, b := run(1), run(4)
	for i := range a.Machines {
		ra, rb := a.Machines[i].Recording, b.Machines[i].Recording
		if ra == nil || rb == nil {
			t.Fatalf("machine %d: missing recording", i)
		}
		if err := ra.EquivalentTo(rb); err != nil {
			t.Fatalf("machine %d: workers=1 vs workers=4 recordings differ: %v", i, err)
		}
	}
}

// TestFleetRecordRejectsCustomSetup: machines with a private Setup
// cannot be captured; they must fail loudly, not record garbage.
func TestFleetRecordRejectsCustomSetup(t *testing.T) {
	machines := StandardFleet(1)
	machines[0].Setup = func(w *interpose.World) error { return nil }
	rep, err := Run(context.Background(), machines, Options{Record: true})
	if err != nil {
		t.Fatalf("fleet run: %v", err)
	}
	if rep.Machines[0].Err == "" {
		t.Fatalf("custom-Setup machine recorded without error")
	}
}
