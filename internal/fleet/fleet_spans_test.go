package fleet

import (
	"context"
	"testing"

	"k23/internal/obsv"
	"k23/internal/span"
)

// TestFleetSpanDeterminism is the span half of the fleet determinism
// contract: with span building on, the merged per-machine span sets must
// hash identically at workers=1 and workers=8 (span sets are keyed by
// machine name, so merge order is schedule-independent), and the
// execution hashes must equal an untraced run's exactly — the phase
// side-stream must not perturb the simulation it is observing.
func TestFleetSpanDeterminism(t *testing.T) {
	machines := StandardFleet(12)
	run := func(workers int) ([]Result, uint64) {
		rep, err := Run(context.Background(), machines, Options{
			Workers: workers,
			Hash:    true,
			Obs:     obsv.Options{Spans: true},
		})
		if err != nil {
			t.Fatalf("fleet run (workers=%d): %v", workers, err)
		}
		if err := rep.FirstErr(); err != nil {
			t.Fatalf("fleet run (workers=%d): %v", workers, err)
		}
		var sets []*span.Set
		for i := range rep.Machines {
			o := rep.Machines[i].Obs
			if o == nil || len(o.Spans) == 0 {
				t.Fatalf("machine %s: no span sets collected", rep.Machines[i].Name)
			}
			sets = append(sets, o.Spans...)
		}
		return normalize(rep), span.HashAll(sets)
	}

	serial, serialHash := run(1)
	_, parallelHash := run(8)
	_, againHash := run(8)

	if serialHash != parallelHash {
		t.Errorf("merged span hash differs between workers=1 (%#x) and workers=8 (%#x)",
			serialHash, parallelHash)
	}
	if parallelHash != againHash {
		t.Errorf("repeated workers=8 runs produced different span hashes: %#x vs %#x",
			parallelHash, againHash)
	}
	if serialHash == 0 {
		t.Error("span hash is zero — span building not wired into the fleet?")
	}

	// Non-perturbation: execution hashes match a run with no observers.
	plain, err := Run(context.Background(), machines, Options{Workers: 8, Hash: true})
	if err != nil {
		t.Fatalf("untraced fleet run: %v", err)
	}
	for i := range serial {
		p := plain.Machines[i]
		s := serial[i]
		if s.TraceHash != p.TraceHash || s.EventHash != p.EventHash || s.VFSHash != p.VFSHash {
			t.Errorf("machine %s: span building perturbed execution: spans={%#x %#x %#x} plain={%#x %#x %#x}",
				s.Name, s.TraceHash, s.EventHash, s.VFSHash, p.TraceHash, p.EventHash, p.VFSHash)
		}
	}

	// Every machine's sets validate and are tagged with its name.
	for i := range serial {
		sets := serial[i].Obs.Spans
		for _, st := range sets {
			if st.Machine != serial[i].Name {
				t.Errorf("machine %s: span set tagged %q", serial[i].Name, st.Machine)
			}
		}
		if rep := span.ValidateSets(sets); !rep.Ok() {
			t.Errorf("machine %s: invalid spans: %v", serial[i].Name, rep.Problems)
		}
	}
}
