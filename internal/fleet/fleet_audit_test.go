package fleet

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"k23/internal/apps"
	"k23/internal/interpose"
	"k23/internal/kernel"
	"k23/internal/obsv"
	"k23/internal/sud"
)

// TestFleetAuditDeterminism extends the fleet determinism contract to
// the shadow-map auditor: per-machine audit snapshots — escape ledger,
// coverage matrix, per-process joins — must be bit-identical at
// workers=1 and workers=8, and auditing must not perturb execution
// (hashes match an unaudited run exactly). Merge-at-report means the
// fleet-level audit view is the sum of the per-machine views.
func TestFleetAuditDeterminism(t *testing.T) {
	machines := StandardFleet(12)
	run := func(workers int) *Report {
		rep, err := Run(context.Background(), machines,
			Options{Workers: workers, Hash: true, Obs: obsv.Options{Audit: true}})
		if err != nil {
			t.Fatalf("fleet run (workers=%d): %v", workers, err)
		}
		if err := rep.FirstErr(); err != nil {
			t.Fatalf("fleet run (workers=%d): %v", workers, err)
		}
		return rep
	}
	serialRep := run(1)
	serial := normalize(serialRep)
	parallel := normalize(run(8))
	for i := range serial {
		if !reflect.DeepEqual(serial[i], parallel[i]) {
			t.Errorf("machine %s (audited) differs between workers=1 and workers=8", serial[i].Name)
		}
		if serial[i].Obs == nil || serial[i].Obs.Audit == nil {
			t.Fatalf("machine %s: no audit snapshot collected", serial[i].Name)
		}
		if serial[i].Obs.Audit.Totals.Oracles == 0 {
			t.Errorf("machine %s: audit saw no oracle events", serial[i].Name)
		}
	}

	// The auditor must not perturb the simulation.
	plain, err := Run(context.Background(), machines, Options{Workers: 8, Hash: true})
	if err != nil {
		t.Fatalf("unaudited fleet run: %v", err)
	}
	for i := range serial {
		p, s := plain.Machines[i], serial[i]
		if s.TraceHash != p.TraceHash || s.EventHash != p.EventHash || s.VFSHash != p.VFSHash {
			t.Errorf("machine %s: auditing perturbed execution: audited={%#x %#x %#x} plain={%#x %#x %#x}",
				s.Name, s.TraceHash, s.EventHash, s.VFSHash, p.TraceHash, p.EventHash, p.VFSHash)
		}
	}

	// Merge-at-report: fleet totals are the per-machine sums.
	merged := serialRep.MergedObs()
	if merged == nil || merged.Audit == nil {
		t.Fatal("MergedObs returned no audit snapshot")
	}
	var oracles, escaped uint64
	for i := range serial {
		oracles += serial[i].Obs.Audit.Totals.Oracles
		escaped += serial[i].Obs.Audit.Totals.Escaped
	}
	if merged.Audit.Totals.Oracles != oracles {
		t.Errorf("merged oracle total %d, want %d", merged.Audit.Totals.Oracles, oracles)
	}
	if merged.Audit.Totals.Escaped != escaped {
		t.Errorf("merged escape total %d, want %d", merged.Audit.Totals.Escaped, escaped)
	}
	// Fleet machines spawn natively — no interposer, so the ground truth
	// stream must join to zero coverage and zero escapes (direct
	// syscalls without claims are internal, trap syscalls never happen).
	if merged.Audit.Totals.Covered != 0 {
		t.Errorf("native fleet shows %d covered syscalls — phantom claims?", merged.Audit.Totals.Covered)
	}
}

// TestFleetAuditChaosReplayStable: under deterministic fault injection,
// the audit report is a pure function of (machines, seed) — the same
// seed replays to the identical snapshot at any worker count, across
// 8 distinct chaos seeds.
func TestFleetAuditChaosReplayStable(t *testing.T) {
	machines := StandardFleet(8)
	run := func(seed uint64, workers int) []Result {
		prof := kernel.DefaultChaosProfile()
		rep, err := Run(context.Background(), machines, Options{
			Workers:   workers,
			Hash:      true,
			Obs:       obsv.Options{Audit: true},
			Chaos:     &prof,
			ChaosSeed: seed,
		})
		if err != nil {
			t.Fatalf("chaos fleet run (seed=%#x workers=%d): %v", seed, workers, err)
		}
		if err := rep.FirstErr(); err != nil {
			t.Fatalf("chaos fleet run (seed=%#x workers=%d): %v", seed, workers, err)
		}
		return normalize(rep)
	}
	for seed := uint64(1); seed <= 8; seed++ {
		serial := run(seed, 1)
		parallel := run(seed, 8)
		again := run(seed, 8)
		for i := range serial {
			if !reflect.DeepEqual(serial[i].Obs.Audit, parallel[i].Obs.Audit) {
				t.Errorf("seed %#x machine %s: audit differs between workers=1 and workers=8", seed, serial[i].Name)
			}
			if !reflect.DeepEqual(parallel[i].Obs.Audit, again[i].Obs.Audit) {
				t.Errorf("seed %#x machine %s: audit differs across replays", seed, serial[i].Name)
			}
		}
	}
}

// auditWorld runs one app under the SUD interposer in its own World
// with metrics+audit observers, returning the frozen snapshot. This is
// the merge fixture: separate Worlds, overlapping syscall sets.
func auditWorld(t *testing.T, path string, argv []string) *obsv.Snapshot {
	t.Helper()
	w := interpose.NewWorld()
	apps.RegisterAll(w.Reg)
	if err := apps.SetupFS(w.K.FS); err != nil {
		t.Fatal(err)
	}
	o := obsv.New(obsv.Options{Metrics: true, Audit: true})
	o.Install(w.K)
	p, err := sud.New(interpose.Config{}).Launch(w, path, argv, nil)
	if err != nil {
		t.Fatalf("launch %s: %v", path, err)
	}
	if err := w.K.RunUntilExit(p, 2_000_000_000); err != nil {
		t.Fatalf("run %s: %v", path, err)
	}
	return o.Snapshot()
}

// TestMergedObsAcrossWorlds: Report.MergedObs folds per-mechanism
// counters, per-syscall latency histograms, and audit coverage cells
// across >=3 Worlds with overlapping syscall sets, cell-by-cell.
func TestMergedObsAcrossWorlds(t *testing.T) {
	snaps := []*obsv.Snapshot{
		auditWorld(t, apps.LsPath, []string{"ls", "/data"}),
		auditWorld(t, apps.CatPath, []string{"cat", "/data/notes.txt"}),
		auditWorld(t, apps.PwdPath, []string{"pwd"}),
	}
	rep := &Report{Machines: []Result{{Obs: snaps[0]}, {Obs: snaps[1]}, {Obs: snaps[2]}}}
	merged := rep.MergedObs()
	if merged == nil || merged.Metrics == nil || merged.Audit == nil {
		t.Fatal("MergedObs dropped metrics or audit")
	}

	// Per-mechanism counters merge by mechanism label; every label in a
	// SUD-only World is SUD-flavored, and each merged cell is the sum of
	// the per-World cells.
	wantMech := map[string]uint64{}
	for _, s := range snaps {
		for _, m := range s.Metrics.Mechanisms {
			if !strings.HasPrefix(m.Mechanism, "sud") {
				t.Errorf("unexpected mechanism %q in a SUD-only World", m.Mechanism)
			}
			wantMech[m.Mechanism] += m.Count
		}
	}
	gotMech := map[string]uint64{}
	for _, m := range merged.Metrics.Mechanisms {
		gotMech[m.Mechanism] += m.Count
	}
	if len(wantMech) == 0 {
		t.Fatal("no mechanism counters collected")
	}
	if !reflect.DeepEqual(gotMech, wantMech) {
		t.Errorf("merged mechanism counters = %v, want %v", gotMech, wantMech)
	}

	// Per-syscall latency histograms merge by syscall number. Every
	// workload issues write and exit_group, so those cells must carry
	// contributions from all three Worlds.
	sumHist := func(s *obsv.MetricsSnapshot, name string) (count, sum uint64, seen int) {
		for i := range s.Syscalls {
			if s.Syscalls[i].Name == name {
				count += s.Syscalls[i].Hist.Count
				sum += s.Syscalls[i].Hist.Sum
				seen++
			}
		}
		return
	}
	for _, name := range []string{"write", "exit_group", "openat"} {
		var wantCount, wantSum uint64
		contributors := 0
		for _, s := range snaps {
			c, su, seen := sumHist(s.Metrics, name)
			wantCount += c
			wantSum += su
			if seen > 0 {
				contributors++
			}
		}
		if contributors < 2 {
			t.Fatalf("%s: only %d Worlds issued it — fixture lost its overlap", name, contributors)
		}
		gotCount, gotSum, seen := sumHist(merged.Metrics, name)
		if seen != 1 {
			t.Errorf("%s: merged snapshot has %d cells, want exactly 1", name, seen)
		}
		if gotCount != wantCount || gotSum != wantSum {
			t.Errorf("%s: merged hist (count=%d sum=%d), want (count=%d sum=%d)",
				name, gotCount, gotSum, wantCount, wantSum)
		}
	}

	// Audit coverage matrix: per (syscall, mechanism) cells add.
	type cell struct {
		nr   uint64
		mech string
	}
	want := map[cell]uint64{}
	for _, s := range snaps {
		for _, c := range s.Audit.Coverage {
			want[cell{c.Nr, c.Mech}] += c.Count
		}
	}
	if len(want) == 0 {
		t.Fatal("no coverage cells in any World")
	}
	got := map[cell]uint64{}
	for _, c := range merged.Audit.Coverage {
		if _, dup := got[cell{c.Nr, c.Mech}]; dup {
			t.Errorf("coverage cell (%d, %s) duplicated after merge", c.Nr, c.Mech)
		}
		got[cell{c.Nr, c.Mech}] = c.Count
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("merged coverage cells = %v, want %v", got, want)
	}

	// Escape totals add (each World has its own startup window).
	var wantEsc uint64
	for _, s := range snaps {
		wantEsc += s.Audit.Totals.Escaped
	}
	if wantEsc == 0 {
		t.Fatal("SUD Worlds reported no startup escapes — fixture lost its signal")
	}
	if merged.Audit.Totals.Escaped != wantEsc {
		t.Errorf("merged escape total %d, want %d", merged.Audit.Totals.Escaped, wantEsc)
	}
}
