package fleet

import (
	"bytes"
	"context"
	"testing"

	"k23/internal/obsv"
	"k23/internal/probe"
)

// TestFleetProbeDeterminism is the probe half of the fleet determinism
// contract: with a probe program installed, the merged aggregation must
// hash identically at workers=1 and workers=8 (Merge is commutative and
// the canonical export sorts), and the execution hashes must equal an
// unprobed run's exactly — engines ride the side-streams and charge no
// guest cycles, so probing must not perturb what it measures.
func TestFleetProbeDeterminism(t *testing.T) {
	compiled, err := obsv.CompileProbes(
		`syscall:*:exit { count() by (name, mech); hist(cycles) by (mech) }`)
	if err != nil {
		t.Fatal(err)
	}
	machines := StandardFleet(12)
	run := func(workers int) ([]Result, *probe.Snapshot) {
		rep, err := Run(context.Background(), machines, Options{
			Workers: workers,
			Hash:    true,
			Probes:  compiled,
		})
		if err != nil {
			t.Fatalf("fleet run (workers=%d): %v", workers, err)
		}
		if err := rep.FirstErr(); err != nil {
			t.Fatalf("fleet run (workers=%d): %v", workers, err)
		}
		merged := &probe.Snapshot{}
		for i := range rep.Machines {
			o := rep.Machines[i].Obs
			if o == nil || o.Probes == nil {
				t.Fatalf("machine %s: no probe snapshot collected", rep.Machines[i].Name)
			}
			merged.Merge(o.Probes)
		}
		return normalize(rep), merged
	}

	hash := func(s *probe.Snapshot) uint64 {
		h, err := s.Hash()
		if err != nil {
			t.Fatalf("snapshot hash: %v", err)
		}
		return h
	}

	serial, serialSnap := run(1)
	_, parallelSnap := run(8)
	_, againSnap := run(8)

	if hash(serialSnap) != hash(parallelSnap) {
		t.Errorf("merged probe hash differs between workers=1 (%#x) and workers=8 (%#x)",
			hash(serialSnap), hash(parallelSnap))
	}
	if hash(parallelSnap) != hash(againSnap) {
		t.Errorf("repeated workers=8 runs produced different probe hashes: %#x vs %#x",
			hash(parallelSnap), hash(againSnap))
	}
	if len(serialSnap.Rows) == 0 {
		t.Fatal("no probe rows — probes not wired into the fleet?")
	}

	// Canonical JSONL is the equality the CLI parity checks rely on:
	// hash-equal snapshots must serialize byte-identically.
	var a, b bytes.Buffer
	if err := serialSnap.WriteJSONL(&a); err != nil {
		t.Fatal(err)
	}
	if err := parallelSnap.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("hash-equal snapshots serialized differently")
	}

	// Non-perturbation: execution hashes match a run with no probes.
	plain, err := Run(context.Background(), machines, Options{Workers: 8, Hash: true})
	if err != nil {
		t.Fatalf("unprobed fleet run: %v", err)
	}
	for i := range serial {
		p := plain.Machines[i]
		s := serial[i]
		if s.TraceHash != p.TraceHash || s.EventHash != p.EventHash || s.VFSHash != p.VFSHash {
			t.Errorf("machine %s: probing perturbed execution: probed={%#x %#x %#x} plain={%#x %#x %#x}",
				s.Name, s.TraceHash, s.EventHash, s.VFSHash, p.TraceHash, p.EventHash, p.VFSHash)
		}
	}

	// The mech key must reflect each machine's mechanism (or "native"),
	// so the merged by-mech rows cover every mechanism the fleet runs.
	want := map[string]bool{}
	for _, m := range machines {
		want[probeMech(m)] = true
	}
	got := map[string]bool{}
	for _, r := range serialSnap.Rows {
		if r.Func == "hist" && len(r.Key) == 1 {
			got[r.Key[0]] = true
		}
	}
	for mech := range want {
		if !got[mech] {
			t.Errorf("no hist row for mechanism %q in merged snapshot", mech)
		}
	}
}
