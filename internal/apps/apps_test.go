package apps_test

import (
	"fmt"
	"testing"

	"k23/internal/apps"
	"k23/internal/core"
	"k23/internal/interpose"
	"k23/internal/kernel"
)

// newAppWorld builds a world with all workloads registered.
func newAppWorld(t *testing.T) *interpose.World {
	t.Helper()
	w := interpose.NewWorld()
	apps.RegisterAll(w.Reg)
	if err := apps.SetupFS(w.K.FS); err != nil {
		t.Fatal(err)
	}
	return w
}

// driveServer waits for the server to listen, then injects one keepalive
// connection with n requests.
func driveServer(t *testing.T, w *interpose.World, p *kernel.Process, n int) {
	t.Helper()
	req := make([]byte, apps.RequestSize)
	for i := range req {
		req[i] = byte('A' + i%26)
	}
	port := apps.BasePort + p.PID
	for i := 0; i < 2000; i++ {
		w.K.Run(10_000)
		if err := w.K.InjectConn(port, req, n, nil); err == nil {
			return
		}
	}
	t.Fatalf("server on port %d never listened", port)
}

// offlineSites runs the offline phase for an app and returns the unique
// site count.
func offlineSites(t *testing.T, path string, argv []string, server bool, requests int) int {
	t.Helper()
	w := newAppWorld(t)
	off := &core.Offline{LogDir: "/var/k23/logs"}
	run, err := off.Start(w, path, argv, nil)
	if err != nil {
		t.Fatalf("offline start %s: %v", path, err)
	}
	if server {
		driveServer(t, w, run.Process(), requests)
	}
	if err := w.Run(run.Process()); err != nil {
		t.Fatalf("offline run %s: %v (stderr %q)", path, err, run.Process().Stderr)
	}
	n, err := run.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// TestTable2SiteCounts reproduces Table 2: the number of unique
// syscall/sysenter instructions logged during the offline phase.
func TestTable2SiteCounts(t *testing.T) {
	cases := []struct {
		name     string
		path     string
		argv     []string
		server   bool
		requests int
		want     int
	}{
		{"pwd", apps.PwdPath, []string{"pwd"}, false, 0, 7},
		{"touch", apps.TouchPath, []string{"touch", "/data/new.txt"}, false, 0, 9},
		{"ls", apps.LsPath, []string{"ls", "/data"}, false, 0, 10},
		{"cat", apps.CatPath, []string{"cat", "/data/notes.txt"}, false, 0, 11},
		{"clear", apps.ClearPath, []string{"clear"}, false, 0, 13},
		{"sqlite", apps.SqlitePath, []string{"sqlite3"}, false, 0, 20},
		{"nginx", apps.NginxPath, []string{"nginx", "0"}, true, 30, 43},
		{"lighttpd", apps.LighttpdPath, []string{"lighttpd", "0"}, true, 30, 44},
		{"redis", apps.RedisPath, []string{"redis-server", "1"}, true, 30, 92},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := offlineSites(t, tc.path, tc.argv, tc.server, tc.requests)
			if got != tc.want {
				t.Errorf("%s: %d unique sites, want %d (Table 2)", tc.name, got, tc.want)
			}
		})
	}
}

func TestCoreutilsRunNatively(t *testing.T) {
	cases := []struct {
		path string
		argv []string
	}{
		{apps.PwdPath, []string{"pwd"}},
		{apps.TouchPath, []string{"touch", "/data/new.txt"}},
		{apps.LsPath, []string{"ls", "/data"}},
		{apps.CatPath, []string{"cat", "/data/notes.txt"}},
		{apps.ClearPath, []string{"clear"}},
	}
	for _, tc := range cases {
		t.Run(tc.argv[0], func(t *testing.T) {
			w := newAppWorld(t)
			p, err := w.L.Spawn(tc.path, tc.argv, nil)
			if err != nil {
				t.Fatal(err)
			}
			if err := w.Run(p); err != nil {
				t.Fatal(err)
			}
			if p.Exit.Code != 0 || p.Exit.Signal != 0 {
				t.Fatalf("exit = %+v", p.Exit)
			}
		})
	}
}

func TestCatCopiesFile(t *testing.T) {
	w := newAppWorld(t)
	p, err := w.L.Spawn(apps.CatPath, []string{"cat", "/data/notes.txt"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(p); err != nil {
		t.Fatal(err)
	}
	want, _ := w.K.FS.ReadFile("/data/notes.txt")
	if string(p.Stdout) != string(want) {
		t.Fatalf("cat output %q, want %q", p.Stdout, want)
	}
}

func TestTouchCreatesFile(t *testing.T) {
	w := newAppWorld(t)
	p, err := w.L.Spawn(apps.TouchPath, []string{"touch", "/data/created.txt"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(p); err != nil {
		t.Fatal(err)
	}
	if !w.K.FS.Exists("/data/created.txt") {
		t.Fatal("touch did not create the file")
	}
}

func TestHTTPServerServesRequests(t *testing.T) {
	for _, mode := range []string{"0", "4"} {
		t.Run("body"+mode, func(t *testing.T) {
			w := newAppWorld(t)
			p, err := w.L.Spawn(apps.NginxPath, []string{"nginx", mode}, nil)
			if err != nil {
				t.Fatal(err)
			}
			var respSizes []int
			req := make([]byte, apps.RequestSize)
			port := apps.BasePort + p.PID
			for i := 0; i < 1000; i++ {
				w.K.Run(10_000)
				if err := w.K.InjectConn(port, req, 5, func(r []byte) {
					respSizes = append(respSizes, len(r))
				}); err == nil {
					break
				}
			}
			if err := w.Run(p); err != nil {
				t.Fatal(err)
			}
			if p.Exit.Code != 5 {
				t.Fatalf("exit = %+v, want 5 served", p.Exit)
			}
			// The 4 KB configuration sends header+body chunks.
			var total int
			for _, n := range respSizes {
				total += n
			}
			want := 5 * apps.Resp0K
			if mode == "4" {
				want = 5 * apps.Resp4K
			}
			if total != want {
				t.Fatalf("responses = %v (total %d), want total %d", respSizes, total, want)
			}
			_, completed := w.K.ListenerStats(port)
			if completed != 5 {
				t.Fatalf("listener completed = %d", completed)
			}
		})
	}
}

func TestRedisModes(t *testing.T) {
	t.Run("single", func(t *testing.T) {
		w := newAppWorld(t)
		p, err := w.L.Spawn(apps.RedisPath, []string{"redis-server", "1"}, nil)
		if err != nil {
			t.Fatal(err)
		}
		req := make([]byte, apps.RequestSize)
		port := apps.BasePort + p.PID
		for i := 0; i < 1000; i++ {
			w.K.Run(10_000)
			if err := w.K.InjectConn(port, req, 7, nil); err == nil {
				break
			}
		}
		if err := w.Run(p); err != nil {
			t.Fatal(err)
		}
		if p.Exit.Code != 7 {
			t.Fatalf("exit = %+v", p.Exit)
		}
	})
	t.Run("main", func(t *testing.T) {
		w := newAppWorld(t)
		p, err := w.L.Spawn(apps.RedisPath, []string{"redis-server", "main"}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Run(p); err != nil {
			t.Fatal(err)
		}
		if p.Exit.Code != 0 {
			t.Fatalf("exit = %+v", p.Exit)
		}
	})
}

func TestSqliteWritesWAL(t *testing.T) {
	w := newAppWorld(t)
	p, err := w.L.Spawn(apps.SqlitePath, []string{"sqlite3"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(p); err != nil {
		t.Fatal(err)
	}
	if p.Exit.Code != 0 {
		t.Fatalf("exit = %+v", p.Exit)
	}
	wal, err := w.K.FS.ReadFile("/var/db/speedtest1.db-wal")
	if err != nil {
		t.Fatal(err)
	}
	if len(wal) != apps.SqliteOps*64 {
		t.Fatalf("WAL size = %d, want %d", len(wal), apps.SqliteOps*64)
	}
}

// Smoke print of actual counts to aid calibration when banks change.
func TestSiteCountBreakdownSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration aid")
	}
	got := offlineSites(t, apps.PwdPath, []string{"pwd"}, false, 0)
	_ = fmt.Sprintf("%d", got)
}
