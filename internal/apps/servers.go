package apps

import (
	"fmt"

	"k23/internal/asm"
	"k23/internal/cpu"
	"k23/internal/image"
	"k23/internal/kernel"
	"k23/internal/libc"
)

// BasePort is the port offset servers listen on: port = BasePort + pid.
// Real deployments share one listener across workers; the simulated
// platform gives each worker process its own port, and the benchmark
// client targets them all.
const BasePort = 8000

// Per-request compute parameters (cycles are approximate; see the
// calibration test and EXPERIMENTS.md). work loops cost ~5 cycles/iter.
const (
	nginxWorkIters    = 3200
	lighttpdWorkIters = 3100
	redisExecIters    = 2650
	redisIOIters      = 600
	sqliteOpIters     = 900

	// RequestSize is what the benchmark client sends per request.
	RequestSize = 64
	// Resp0K and Resp4K are the response sizes for the 0 KB and 4 KB
	// static-file configurations.
	Resp0K = 128
	Resp4K = 4096 + 128

	// SqliteOps is the op count of the speedtest1-style workload
	// (-size 800 analogue, scaled for simulation).
	SqliteOps = 800

	// RedisMainIters is the fixed iteration count of the main-thread
	// component workload.
	RedisMainIters = 2000
)

// Site-bank sizes, tuned so each application's offline profile matches
// Table 2 (see TestTable2SiteCounts).
const (
	nginxBank    = 30
	lighttpdBank = 31
	redisBank    = 82
	sqliteBank   = 15
)

// bankSyscalls are cheap syscalls the site banks rotate through.
var bankSyscalls = []uint32{
	kernel.SysGetpid, kernel.SysGetuid, kernel.SysGettid,
	kernel.SysSchedYield, kernel.SysTime,
}

// emitBank emits n distinct inline syscall sites plus "bank_exercise",
// which executes each once. Real servers hit tens of distinct syscall
// instructions while loading configuration and warming caches; the bank
// models that spread of sites (§5.1, Table 2).
func emitBank(t *asm.SectionBuilder, n int) {
	t.Label(".bank_exercise")
	for i := 0; i < n; i++ {
		t.Call(fmt.Sprintf(".bank%d", i))
	}
	t.Ret()
	for i := 0; i < n; i++ {
		t.Label(fmt.Sprintf(".bank%d", i))
		t.Xor(cpu.RDI, cpu.RDI) // well-behaved: NULL out-pointers
		t.MovImm32(cpu.RAX, bankSyscalls[i%len(bankSyscalls)])
		t.Syscall()
		t.Ret()
	}
}

// emitWorkLoop emits a countdown compute loop of `iters` iterations
// (~5 cycles each: imul + add + jnz).
func emitWorkLoop(t *asm.SectionBuilder, label string, iters uint32) {
	t.Label(label)
	t.MovImm32(cpu.RCX, iters)
	t.MovImm32(cpu.RAX, 0x9e37)
	t.Label(label + "_loop")
	t.Mul(cpu.RAX, cpu.RCX)
	t.AddImm(cpu.RCX, -1)
	t.Jnz(label + "_loop")
	t.Ret()
}

// emitParse emits a checksum loop over the first 64 request bytes at
// [RSI] (clobbers RAX, RCX, R11).
func emitParse(t *asm.SectionBuilder, label string) {
	t.Label(label)
	t.Xor(cpu.RAX, cpu.RAX)
	t.MovImm32(cpu.RCX, RequestSize)
	t.Label(label + "_loop")
	t.LoadB(cpu.R11, cpu.RSI, 0)
	t.Add(cpu.RAX, cpu.R11)
	t.AddImm(cpu.RSI, 1)
	t.AddImm(cpu.RCX, -1)
	t.Jnz(label + "_loop")
	t.Ret()
}

// emitBody emits the body-construction loop for an n-byte response:
// touch the response buffer in 8-byte strides ([RSI] base).
func emitBody(t *asm.SectionBuilder, label string, n uint32) {
	t.Label(label)
	t.MovImm32(cpu.RCX, n/8)
	t.Label(label + "_loop")
	t.Load(cpu.R11, cpu.RSI, 0)
	t.AddImm(cpu.R11, 1)
	t.Store(cpu.RSI, 0, cpu.R11)
	t.AddImm(cpu.RSI, 8)
	t.AddImm(cpu.RCX, -1)
	t.Jnz(label + "_loop")
	t.Ret()
}

// emitServerSetup emits getpid/socket/bind/listen/accept; leaves the
// connection fd in RBP. Port = BasePort + pid.
func emitServerSetup(t *asm.SectionBuilder) {
	t.CallSym("getpid")
	t.Mov(cpu.RBX, cpu.RAX)
	t.AddImm(cpu.RBX, BasePort) // port
	t.CallSym("socket")
	t.Mov(cpu.R15, cpu.RAX) // listen fd
	t.Mov(cpu.RDI, cpu.R15)
	t.Mov(cpu.RSI, cpu.RBX)
	t.CallSym("bind")
	t.Mov(cpu.RDI, cpu.R15)
	t.MovImm32(cpu.RSI, 128)
	t.CallSym("listen")
	t.MovImm32(cpu.RDI, 0)
	t.CallSym("epoll_create1")
	t.Mov(cpu.R9, cpu.RAX) // epoll fd
	t.Mov(cpu.RDI, cpu.R15)
	t.CallSym("accept")
	t.Mov(cpu.RBP, cpu.RAX) // conn fd
}

// buildHTTPServer builds an nginx/lighttpd-style worker. argv[1] is the
// static-file configuration: "0" (0 KB) or "4" (4 KB). The worker serves
// one keepalive connection to completion (the wrk model) and exits with
// the number of requests served (mod 256).
func buildHTTPServer(path string, bank int, workIters uint32) *image.Image {
	b := asm.NewBuilder(path)
	b.Needed(libc.Path)
	d := b.Data()
	d.Label(".reqbuf").Space(RequestSize + 64)
	d.Label(".respbuf").Space(Resp4K + 64)
	t := b.Text()

	t.Label("_start")
	// argv[1][0] == '4' selects the 4 KB body.
	t.Load(cpu.R14, cpu.RSI, 8) // argv[1]
	t.LoadB(cpu.R14, cpu.R14, 0)
	// Warm-up / configuration phase: exercise the site bank.
	t.Call(".bank_exercise")
	emitServerSetup(t)
	t.Xor(cpu.R13, cpu.R13) // served counter

	t.Label(".serve")
	// Event loop: epoll_wait for readiness, then read the request.
	t.Mov(cpu.RDI, cpu.R9)
	t.CallSym("epoll_wait")
	t.Mov(cpu.RDI, cpu.RBP)
	t.MovImmSym(cpu.RSI, ".reqbuf")
	t.MovImm32(cpu.RDX, RequestSize)
	t.CallSym("read")
	t.Test(cpu.RAX, cpu.RAX)
	t.Jz(".finish")
	// Parse the request.
	t.MovImmSym(cpu.RSI, ".reqbuf")
	t.Call(".parse")
	// Request-handling work.
	t.Call(".work")
	// Build the body and pick the response length. The 4 KB body goes
	// out as header + body chunks (writev-style), the 0 KB response as
	// one write.
	t.CmpImm(cpu.R14, '4')
	t.Jnz(".small")
	t.MovImmSym(cpu.RSI, ".respbuf")
	t.Call(".body4k")
	t.Mov(cpu.RDI, cpu.RBP)
	t.MovImmSym(cpu.RSI, ".respbuf")
	t.MovImm32(cpu.RDX, Resp0K) // header chunk
	t.CallSym("write")
	t.Mov(cpu.RDI, cpu.RBP)
	t.MovImmSym(cpu.RSI, ".respbuf")
	t.MovImm32(cpu.RDX, Resp4K-Resp0K) // body chunk
	t.CallSym("write")
	t.Call(".post_request")
	t.AddImm(cpu.R13, 1)
	t.Jmp(".serve")
	t.Label(".small")
	t.MovImmSym(cpu.RSI, ".respbuf")
	t.Call(".body0k")
	t.Mov(cpu.RDI, cpu.RBP)
	t.MovImmSym(cpu.RSI, ".respbuf")
	t.MovImm32(cpu.RDX, Resp0K)
	t.CallSym("write")
	t.Call(".post_request")
	t.AddImm(cpu.R13, 1)
	t.Jmp(".serve")

	// Per-request housekeeping, as real servers do: TCP_NODELAY-style
	// setsockopt (modelled by fcntl), connection state ioctl, and epoll
	// re-arm.
	t.Label(".post_request")
	t.Mov(cpu.RDI, cpu.RBP)
	t.CallSym("fcntl")
	t.Mov(cpu.RDI, cpu.RBP)
	t.MovImm32(cpu.RSI, 0x5421)
	t.CallSym("ioctl")
	t.Mov(cpu.RDI, cpu.R9)
	t.Mov(cpu.RSI, cpu.RBP)
	t.CallSym("epoll_ctl")
	t.Ret()

	t.Label(".finish")
	t.Mov(cpu.RDI, cpu.R13)
	t.CallSym("exit_group")

	emitBank(t, bank)
	emitParse(t, ".parse")
	emitWorkLoop(t, ".work", workIters)
	emitBody(t, ".body0k", Resp0K)
	emitBody(t, ".body4k", Resp4K)
	return b.MustBuild()
}

// Nginx builds the nginx-like worker (Table 2: 43 unique sites).
func Nginx() *image.Image { return buildHTTPServer(NginxPath, nginxBank, nginxWorkIters) }

// Lighttpd builds the lighttpd-like worker (Table 2: 44 unique sites).
func Lighttpd() *image.Image { return buildHTTPServer(LighttpdPath, lighttpdBank, lighttpdWorkIters) }

// Redis builds the redis-like server (Table 2: 92 unique sites).
//
// Modes (argv[1]):
//
//	"1"    single-threaded: read, parse, execute, write per GET.
//	"io"   I/O-thread component: read, light parse, write per GET.
//	"main" main-thread component: RedisMainIters x (8 futex wakeups to
//	       the I/O threads + command execution) with no network — the
//	       serial bottleneck of the 6-I/O-thread configuration.
func Redis() *image.Image {
	b := asm.NewBuilder(RedisPath)
	b.Needed(libc.Path)
	d := b.Data()
	d.Label(".reqbuf").Space(RequestSize + 64)
	d.Label(".respbuf").Space(256)
	t := b.Text()

	t.Label("_start")
	t.Load(cpu.R14, cpu.RSI, 8) // argv[1]
	t.LoadB(cpu.R14, cpu.R14, 0)
	t.Call(".bank_exercise")
	t.CmpImm(cpu.R14, 'm')
	t.Jz(".main_mode")

	emitServerSetup(t)
	t.Xor(cpu.R13, cpu.R13)
	t.Label(".serve")
	t.Mov(cpu.RDI, cpu.R9)
	t.CallSym("epoll_wait")
	t.Mov(cpu.RDI, cpu.RBP)
	t.MovImmSym(cpu.RSI, ".reqbuf")
	t.MovImm32(cpu.RDX, RequestSize)
	t.CallSym("read")
	t.Test(cpu.RAX, cpu.RAX)
	t.Jz(".finish")
	t.MovImmSym(cpu.RSI, ".reqbuf")
	t.Call(".parse")
	// Full mode additionally executes the command.
	t.CmpImm(cpu.R14, '1')
	t.Jnz(".reply")
	t.Call(".exec")
	t.Jmp(".reply")
	t.Label(".reply")
	t.Mov(cpu.RDI, cpu.RBP)
	t.MovImmSym(cpu.RSI, ".respbuf")
	t.MovImm32(cpu.RDX, 64)
	t.CallSym("write")
	t.AddImm(cpu.R13, 1)
	t.Jmp(".serve")

	t.Label(".finish")
	t.Mov(cpu.RDI, cpu.R13)
	t.CallSym("exit_group")

	// Main-thread component: per "request": 5 futex wakeups to the I/O
	// threads plus command execution.
	t.Label(".main_mode")
	t.MovImm32(cpu.R13, RedisMainIters)
	t.Label(".main_loop")
	for i := 0; i < 8; i++ {
		t.MovImm32(cpu.RDI, 1)
		t.CallSym("futex")
	}
	t.Call(".exec")
	t.AddImm(cpu.R13, -1)
	t.Jnz(".main_loop")
	exitWith(t, 0)

	emitBank(t, redisBank)
	emitParse(t, ".parse")
	emitWorkLoop(t, ".exec", redisExecIters)
	emitWorkLoop(t, ".iowork", redisIOIters)
	return b.MustBuild()
}

// Sqlite builds the sqlite-like binary running a speedtest1-style
// workload (Table 2: 20 unique sites): SqliteOps operations, each a
// compute step plus a WAL append, with a periodic fstat checkpoint probe.
func Sqlite() *image.Image {
	b := asm.NewBuilder(SqlitePath)
	b.Needed(libc.Path)
	d := b.Data()
	d.Label(".statbuf").Space(160)
	d.Label(".walrec").Space(64)
	ro := b.Rodata()
	ro.Label(".walpath").CString("/var/db/speedtest1.db-wal")
	t := b.Text()

	t.Label("_start")
	// argv[1] = operation count (decimal); the speedtest1 -size knob.
	t.Load(cpu.R8, cpu.RSI, 8)
	t.Xor(cpu.R13, cpu.R13)
	t.Test(cpu.R8, cpu.R8)
	t.Jz(".default_ops")
	t.Label(".ops_parse")
	t.LoadB(cpu.RCX, cpu.R8, 0)
	t.Test(cpu.RCX, cpu.RCX)
	t.Jz(".ops_done")
	t.MovImm32(cpu.R11, 10)
	t.Mul(cpu.R13, cpu.R11)
	t.AddImm(cpu.RCX, -'0')
	t.Add(cpu.R13, cpu.RCX)
	t.AddImm(cpu.R8, 1)
	t.Jmp(".ops_parse")
	t.Label(".default_ops")
	t.MovImm32(cpu.R13, SqliteOps)
	t.Label(".ops_done")
	t.Call(".bank_exercise")
	// open the WAL (O_CREAT|O_WRONLY|O_APPEND).
	t.MovImmSym(cpu.RDI, ".walpath")
	t.MovImm32(cpu.RSI, kernel.OCreat|kernel.OWronly|kernel.OAppend)
	t.CallSym("open")
	t.Mov(cpu.RBP, cpu.RAX)
	t.Mov(cpu.RBX, cpu.R13) // remember ops for the WAL-size check

	t.Label(".op")
	t.Call(".work") // the SQL work (synchronous=NORMAL, no checkpoint)
	// WAL append.
	t.Mov(cpu.RDI, cpu.RBP)
	t.MovImmSym(cpu.RSI, ".walrec")
	t.MovImm32(cpu.RDX, 64)
	t.CallSym("write")
	// Every 16th op, probe the WAL size.
	t.Mov(cpu.RCX, cpu.R13)
	t.MovImm32(cpu.R11, 15)
	t.And(cpu.RCX, cpu.R11)
	t.Jnz(".next")
	t.Mov(cpu.RDI, cpu.RBP)
	t.MovImmSym(cpu.RSI, ".statbuf")
	t.CallSym("fstat")
	t.Label(".next")
	t.AddImm(cpu.R13, -1)
	t.Jnz(".op")

	t.Mov(cpu.RDI, cpu.RBP)
	t.CallSym("close")
	exitWith(t, 0)

	emitBank(t, sqliteBank)
	emitWorkLoop(t, ".work", sqliteOpIters)
	return b.MustBuild()
}
