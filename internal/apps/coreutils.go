// Package apps builds the evaluation workloads of the paper on the
// simulated platform: five coreutils (pwd, touch, ls, cat, clear) and
// four server/database applications (nginx-, lighttpd-, redis- and
// sqlite-like), each constructed so its *unique executed syscall-site*
// profile matches Table 2 and its per-request syscall/compute mix drives
// the Table 6 macrobenchmarks.
package apps

import (
	"fmt"
	"strings"

	"k23/internal/asm"
	"k23/internal/cpu"
	"k23/internal/image"
	"k23/internal/kernel"
	"k23/internal/libc"
	"k23/internal/vfs"
)

// Binary paths.
const (
	PwdPath      = "/usr/bin/pwd"
	TouchPath    = "/usr/bin/touch"
	LsPath       = "/usr/bin/ls"
	CatPath      = "/usr/bin/cat"
	ClearPath    = "/usr/bin/clear"
	NginxPath    = "/usr/sbin/nginx"
	LighttpdPath = "/usr/sbin/lighttpd"
	RedisPath    = "/usr/bin/redis-server"
	SqlitePath   = "/usr/bin/sqlite3"
)

// Auxiliary library paths ls links against (as the real ls does), each
// with a constructor performing its own startup syscalls — all of which
// run before any LD_PRELOAD interposer initializes.
var LsDeps = []string{
	"/usr/lib/libselinux.so.1",
	"/usr/lib/libcap.so.2",
	"/usr/lib/libpcre2-8.so.0",
	"/usr/lib/libacl.so.1",
}

// auxLibConfigs maps each ls dependency to the config file its
// constructor probes.
var auxLibConfigs = map[string]string{
	"/usr/lib/libselinux.so.1": "/etc/selinux/config",
	"/usr/lib/libcap.so.2":     "/etc/capability.conf",
	"/usr/lib/libpcre2-8.so.0": "/etc/pcre2.cfg",
	"/usr/lib/libacl.so.1":     "/etc/acl.conf",
}

// buildAuxLib assembles a small shared library whose constructor performs
// glibc-dependency-style startup work: probe a config file, map a cache,
// query identity.
func buildAuxLib(path, config string) *image.Image {
	b := asm.NewBuilder(path)
	b.Needed(libc.Path)
	ro := b.Rodata()
	ro.Label(".cfg").CString(config)
	d := b.Data()
	d.Label(".statbuf").Space(160)
	t := b.Text()
	initName := "init_" + path[strings.LastIndexByte(path, '/')+1:]
	t.Label(initName)
	t.Push(cpu.RBX)
	t.MovImmSym(cpu.RDI, ".cfg")
	t.MovImm32(cpu.RSI, 0)
	t.CallSym("access")
	t.MovImmSym(cpu.RDI, ".cfg")
	t.MovImm32(cpu.RSI, 0)
	t.CallSym("open")
	t.Mov(cpu.RBX, cpu.RAX)
	t.Mov(cpu.RDI, cpu.RBX)
	t.MovImmSym(cpu.RSI, ".statbuf")
	t.CallSym("fstat")
	t.MovImm32(cpu.RDI, 0)
	t.MovImm32(cpu.RSI, 4096)
	t.MovImm32(cpu.RDX, kernel.ProtRead)
	t.MovImm32(cpu.R10, 0)
	t.CallSym("mmap")
	t.Mov(cpu.RDI, cpu.RBX)
	t.CallSym("close")
	t.CallSym("getuid")
	t.Pop(cpu.RBX)
	t.Ret()
	b.Init(initName)
	return b.MustBuild()
}

// RegisterAll adds every workload binary to the registry.
func RegisterAll(reg *image.Registry) {
	for _, dep := range LsDeps {
		reg.MustAdd(buildAuxLib(dep, auxLibConfigs[dep]))
	}
	reg.MustAdd(Pwd())
	reg.MustAdd(Touch())
	reg.MustAdd(Ls())
	reg.MustAdd(Cat())
	reg.MustAdd(Clear())
	reg.MustAdd(Nginx())
	reg.MustAdd(Lighttpd())
	reg.MustAdd(Redis())
	reg.MustAdd(Sqlite())
}

// SetupFS creates the files the workloads touch.
func SetupFS(fs *vfs.FS) error {
	files := map[string]string{
		"/etc/motd":          "Welcome to SimLinux.\n",
		"/etc/terminfo/x":    "xterm-sim capabilities",
		"/data/notes.txt":    "The quick brown fox jumps over the lazy dog.\n",
		"/var/www/index.html": "<html><body>hello</body></html>\n",
	}
	for p, content := range files {
		if err := fs.WriteFile(p, []byte(content), vfs.ModeRW); err != nil {
			return fmt.Errorf("apps: setup %s: %w", p, err)
		}
	}
	return fs.MkdirAll("/var/db")
}

// exitWith emits exit_group(code).
func exitWith(t *asm.SectionBuilder, code uint32) {
	t.MovImm32(cpu.RDI, code)
	t.CallSym("exit_group")
}

// Pwd builds the pwd coreutil: 7 unique syscall sites during a run
// (Table 2).
func Pwd() *image.Image {
	b := asm.NewBuilder(PwdPath)
	b.Needed(libc.Path)
	d := b.Data()
	d.Label(".buf").Space(256)
	d.Label(".statbuf").Space(160)
	t := b.Text()
	t.Label("_start")
	// getcwd(buf, 256)                                    site 1
	t.MovImmSym(cpu.RDI, ".buf")
	t.MovImm32(cpu.RSI, 256)
	t.CallSym("getcwd")
	t.Mov(cpu.RBX, cpu.RAX) // length incl. NUL
	// ioctl(1, TCGETS) — isatty probe                     site 2
	t.MovImm32(cpu.RDI, 1)
	t.MovImm32(cpu.RSI, 0x5401)
	t.CallSym("ioctl")
	// fstat(1, statbuf)                                   site 3
	t.MovImm32(cpu.RDI, 1)
	t.MovImmSym(cpu.RSI, ".statbuf")
	t.CallSym("fstat")
	// write(1, buf, len)                                  site 4
	t.MovImm32(cpu.RDI, 1)
	t.MovImmSym(cpu.RSI, ".buf")
	t.Mov(cpu.RDX, cpu.RBX)
	t.CallSym("write")
	// access("/", F_OK)                                   site 5
	t.MovImmSym(cpu.RDI, ".buf")
	t.MovImm32(cpu.RSI, 0)
	t.CallSym("access")
	// close(1)                                            site 6
	t.MovImm32(cpu.RDI, 1)
	t.CallSym("close")
	// exit_group                                          site 7
	exitWith(t, 0)
	return b.MustBuild()
}

// Touch builds the touch coreutil: 9 unique sites. Usage: touch FILE.
func Touch() *image.Image {
	b := asm.NewBuilder(TouchPath)
	b.Needed(libc.Path)
	d := b.Data()
	d.Label(".statbuf").Space(160)
	t := b.Text()
	t.Label("_start")
	// argv[1] -> RBX
	t.Load(cpu.RBX, cpu.RSI, 8)
	// access(file)                                        site 1
	t.Mov(cpu.RDI, cpu.RBX)
	t.MovImm32(cpu.RSI, 0)
	t.CallSym("access")
	// open(file, O_CREAT|O_WRONLY)                        site 2
	t.Mov(cpu.RDI, cpu.RBX)
	t.MovImm32(cpu.RSI, kernel.OCreat|kernel.OWronly)
	t.CallSym("open")
	t.Mov(cpu.RBP, cpu.RAX)
	// fstat(fd)                                           site 3
	t.Mov(cpu.RDI, cpu.RBP)
	t.MovImmSym(cpu.RSI, ".statbuf")
	t.CallSym("fstat")
	// chmod(file, 0644) — timestamp-update stand-in       site 4
	t.Mov(cpu.RDI, cpu.RBX)
	t.MovImm32(cpu.RSI, 0o6)
	t.CallSym("chmod")
	// stat(file)                                          site 5
	t.Mov(cpu.RDI, cpu.RBX)
	t.MovImmSym(cpu.RSI, ".statbuf")
	t.CallSym("stat")
	// ioctl                                               site 6
	t.MovImm32(cpu.RDI, 1)
	t.MovImm32(cpu.RSI, 0x5401)
	t.CallSym("ioctl")
	// write(1, file, 1) — diagnostics                     site 7
	t.MovImm32(cpu.RDI, 1)
	t.Mov(cpu.RSI, cpu.RBX)
	t.MovImm32(cpu.RDX, 1)
	t.CallSym("write")
	// close(fd)                                           site 8
	t.Mov(cpu.RDI, cpu.RBP)
	t.CallSym("close")
	// exit_group                                          site 9
	exitWith(t, 0)
	return b.MustBuild()
}

// Ls builds the ls coreutil: 10 unique sites. Usage: ls DIR.
func Ls() *image.Image {
	b := asm.NewBuilder(LsPath)
	b.Needed(libc.Path)
	b.Needed(LsDeps...)
	d := b.Data()
	d.Label(".statbuf").Space(160)
	d.Label(".buf").Space(512)
	ro := b.Rodata()
	ro.Label(".listing").CString("total 0\n")
	t := b.Text()
	t.Label("_start")
	t.Load(cpu.RBX, cpu.RSI, 8) // argv[1]
	// stat(dir)                                           site 1
	t.Mov(cpu.RDI, cpu.RBX)
	t.MovImmSym(cpu.RSI, ".statbuf")
	t.CallSym("stat")
	// open(dir)                                           site 2
	t.Mov(cpu.RDI, cpu.RBX)
	t.MovImm32(cpu.RSI, 0)
	t.CallSym("open")
	t.Mov(cpu.RBP, cpu.RAX)
	// fstat(fd)                                           site 3
	t.Mov(cpu.RDI, cpu.RBP)
	t.MovImmSym(cpu.RSI, ".statbuf")
	t.CallSym("fstat")
	// mmap scratch (dirent buffer)                        site 4
	t.MovImm32(cpu.RDI, 0)
	t.MovImm32(cpu.RSI, 4096)
	t.MovImm32(cpu.RDX, kernel.ProtRead|kernel.ProtWrite)
	t.MovImm32(cpu.R10, 0)
	t.CallSym("mmap")
	t.Mov(cpu.R15, cpu.RAX)
	// read(fd) — getdents stand-in                        site 5
	t.Mov(cpu.RDI, cpu.RBP)
	t.Mov(cpu.RSI, cpu.R15)
	t.MovImm32(cpu.RDX, 4096)
	t.CallSym("read")
	// ioctl(1) — column width probe                       site 6
	t.MovImm32(cpu.RDI, 1)
	t.MovImm32(cpu.RSI, 0x5413)
	t.CallSym("ioctl")
	// write(1, listing, 8)                                site 7
	t.MovImm32(cpu.RDI, 1)
	t.MovImmSym(cpu.RSI, ".listing")
	t.MovImm32(cpu.RDX, 8)
	t.CallSym("write")
	// munmap                                              site 8
	t.Mov(cpu.RDI, cpu.R15)
	t.MovImm32(cpu.RSI, 4096)
	t.CallSym("munmap")
	// close                                               site 9
	t.Mov(cpu.RDI, cpu.RBP)
	t.CallSym("close")
	// exit_group                                          site 10
	exitWith(t, 0)
	return b.MustBuild()
}

// Cat builds the cat coreutil: 11 unique sites. Usage: cat FILE.
func Cat() *image.Image {
	b := asm.NewBuilder(CatPath)
	b.Needed(libc.Path)
	d := b.Data()
	d.Label(".statbuf").Space(160)
	t := b.Text()
	t.Label("_start")
	t.Load(cpu.RBX, cpu.RSI, 8) // argv[1]
	// access(file)                                        site 1
	t.Mov(cpu.RDI, cpu.RBX)
	t.MovImm32(cpu.RSI, 0)
	t.CallSym("access")
	// open(file)                                          site 2
	t.Mov(cpu.RDI, cpu.RBX)
	t.MovImm32(cpu.RSI, 0)
	t.CallSym("open")
	t.Mov(cpu.RBP, cpu.RAX)
	// fstat(fd)                                           site 3
	t.Mov(cpu.RDI, cpu.RBP)
	t.MovImmSym(cpu.RSI, ".statbuf")
	t.CallSym("fstat")
	// mmap io buffer                                      site 4
	t.MovImm32(cpu.RDI, 0)
	t.MovImm32(cpu.RSI, 4096)
	t.MovImm32(cpu.RDX, kernel.ProtRead|kernel.ProtWrite)
	t.MovImm32(cpu.R10, 0)
	t.CallSym("mmap")
	t.Mov(cpu.R15, cpu.RAX)
	// madvise(buf)                                        site 5
	t.Mov(cpu.RDI, cpu.R15)
	t.MovImm32(cpu.RSI, 4096)
	t.MovImm32(cpu.RDX, 3)
	t.CallSym("madvise")
	// copy loop: read(fd) site 6 / write(1) site 7
	t.Label(".copy")
	t.Mov(cpu.RDI, cpu.RBP)
	t.Mov(cpu.RSI, cpu.R15)
	t.MovImm32(cpu.RDX, 4096)
	t.CallSym("read")
	t.Test(cpu.RAX, cpu.RAX)
	t.Jz(".done")
	t.Mov(cpu.RDX, cpu.RAX)
	t.MovImm32(cpu.RDI, 1)
	t.Mov(cpu.RSI, cpu.R15)
	t.CallSym("write")
	t.Jmp(".copy")
	t.Label(".done")
	// ioctl(1)                                            site 8
	t.MovImm32(cpu.RDI, 1)
	t.MovImm32(cpu.RSI, 0x5401)
	t.CallSym("ioctl")
	// munmap                                              site 9
	t.Mov(cpu.RDI, cpu.R15)
	t.MovImm32(cpu.RSI, 4096)
	t.CallSym("munmap")
	// close                                               site 10
	t.Mov(cpu.RDI, cpu.RBP)
	t.CallSym("close")
	// exit_group                                          site 11
	exitWith(t, 0)
	return b.MustBuild()
}

// Clear builds the clear coreutil: 13 unique sites.
func Clear() *image.Image {
	b := asm.NewBuilder(ClearPath)
	b.Needed(libc.Path)
	d := b.Data()
	d.Label(".statbuf").Space(160)
	ro := b.Rodata()
	ro.Label(".terminfo").CString("/etc/terminfo/x")
	ro.Label(".escape").CString("\x1b[H\x1b[2J")
	t := b.Text()
	t.Label("_start")
	// getpid — terminfo cache key                         site 1
	t.CallSym("getpid")
	// ioctl(1) — terminal probe                           site 2
	t.MovImm32(cpu.RDI, 1)
	t.MovImm32(cpu.RSI, 0x5401)
	t.CallSym("ioctl")
	// access(terminfo)                                    site 3
	t.MovImmSym(cpu.RDI, ".terminfo")
	t.MovImm32(cpu.RSI, 0)
	t.CallSym("access")
	// stat(terminfo)                                      site 4
	t.MovImmSym(cpu.RDI, ".terminfo")
	t.MovImmSym(cpu.RSI, ".statbuf")
	t.CallSym("stat")
	// open(terminfo)                                      site 5
	t.MovImmSym(cpu.RDI, ".terminfo")
	t.MovImm32(cpu.RSI, 0)
	t.CallSym("open")
	t.Mov(cpu.RBP, cpu.RAX)
	// fstat(fd)                                           site 6
	t.Mov(cpu.RDI, cpu.RBP)
	t.MovImmSym(cpu.RSI, ".statbuf")
	t.CallSym("fstat")
	// mmap terminfo db                                    site 7
	t.MovImm32(cpu.RDI, 0)
	t.MovImm32(cpu.RSI, 4096)
	t.MovImm32(cpu.RDX, kernel.ProtRead|kernel.ProtWrite)
	t.MovImm32(cpu.R10, 0)
	t.CallSym("mmap")
	t.Mov(cpu.R15, cpu.RAX)
	// read(fd)                                            site 8
	t.Mov(cpu.RDI, cpu.RBP)
	t.Mov(cpu.RSI, cpu.R15)
	t.MovImm32(cpu.RDX, 4096)
	t.CallSym("read")
	// madvise                                             site 9
	t.Mov(cpu.RDI, cpu.R15)
	t.MovImm32(cpu.RSI, 4096)
	t.MovImm32(cpu.RDX, 4)
	t.CallSym("madvise")
	// write(1, escape, 7)                                 site 10
	t.MovImm32(cpu.RDI, 1)
	t.MovImmSym(cpu.RSI, ".escape")
	t.MovImm32(cpu.RDX, 7)
	t.CallSym("write")
	// munmap                                              site 11
	t.Mov(cpu.RDI, cpu.R15)
	t.MovImm32(cpu.RSI, 4096)
	t.CallSym("munmap")
	// close(fd)                                           site 12
	t.Mov(cpu.RDI, cpu.RBP)
	t.CallSym("close")
	// exit_group                                          site 13
	exitWith(t, 0)
	return b.MustBuild()
}
