package sud

import "k23/internal/kernel"

// Checkpoint support: SUD's per-process state is a plain value struct
// (stats plus fixed guest addresses), so snapshot and restore are value
// copies.

// SnapshotHostState implements kernel.HostState.
func (st *state) SnapshotHostState() any {
	s := *st
	return &s
}

// RestoreHostState implements kernel.HostState.
func (st *state) RestoreHostState(v any) {
	*st = *(v.(*state))
}

var _ kernel.HostState = (*state)(nil)
