package sud_test

import (
	"testing"

	"k23/internal/asm"
	"k23/internal/cpu"
	"k23/internal/image"
	"k23/internal/interpose"
	"k23/internal/kernel"
	"k23/internal/libc"
	"k23/internal/sud"
)

func buildGetpidProg(n int) *image.Image {
	b := asm.NewBuilder("/bin/getpid")
	b.Needed(libc.Path)
	tx := b.Text()
	tx.Label("_start")
	tx.MovImm32(cpu.RBX, uint32(n))
	tx.Label(".loop")
	tx.CallSym("getpid")
	tx.AddImm(cpu.RBX, -1)
	tx.Jnz(".loop")
	tx.Mov(cpu.RDI, cpu.RAX)
	tx.CallSym("exit_group")
	return b.MustBuild()
}

func TestSUDInterposesEverySyscall(t *testing.T) {
	w := interpose.NewWorld()
	w.MustRegister(buildGetpidProg(3))

	var getpids, total int
	s := sud.New(interpose.Config{
		Hook: func(c *interpose.Call) (uint64, bool) {
			total++
			if c.Mechanism != interpose.MechSUD {
				t.Errorf("mechanism = %v", c.Mechanism)
			}
			if c.Num == kernel.SysGetpid {
				getpids++
			}
			return 0, false
		},
	})
	p, err := s.Launch(w, "/bin/getpid", []string{"getpid"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(p); err != nil {
		t.Fatal(err)
	}
	if p.Exit.Code != p.PID {
		t.Fatalf("exit = %+v, want pid passthrough", p.Exit)
	}
	if getpids != 3 {
		t.Fatalf("hook saw %d getpids, want 3", getpids)
	}
	// The exit_group must be interposed too.
	if total < 4 {
		t.Fatalf("hook saw only %d syscalls", total)
	}
	if s.Stats(p).SUD < 4 {
		t.Fatalf("stats.SUD = %d", s.Stats(p).SUD)
	}
}

func TestSUDEmulates(t *testing.T) {
	w := interpose.NewWorld()
	w.MustRegister(buildGetpidProg(1))

	s := sud.New(interpose.Config{
		Hook: func(c *interpose.Call) (uint64, bool) {
			if c.Num == kernel.SysGetpid {
				return 321, true
			}
			return 0, false
		},
	})
	p, err := s.Launch(w, "/bin/getpid", []string{"getpid"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(p); err != nil {
		t.Fatal(err)
	}
	if p.Exit.Code != 65 { // exit codes are 8-bit: 321 & 0xff = 65
		t.Fatalf("exit = %+v, want 321 mod 256", p.Exit)
	}
}

func TestSUDArgumentRewrite(t *testing.T) {
	// Deep argument inspection and modification: rewrite write(1, ...)
	// payloads by redirecting the buffer pointer.
	w := interpose.NewWorld()

	b := asm.NewBuilder("/bin/writer")
	b.Needed(libc.Path)
	ro := b.Rodata()
	ro.Label(".msg").CString("AAAA")
	tx := b.Text()
	tx.Label("_start")
	tx.MovImm32(cpu.RDI, 1)
	tx.MovImmSym(cpu.RSI, ".msg")
	tx.MovImm32(cpu.RDX, 4)
	tx.CallSym("write")
	tx.MovImm32(cpu.RDI, 0)
	tx.CallSym("exit_group")
	w.MustRegister(b.MustBuild())

	s := sud.New(interpose.Config{
		Hook: func(c *interpose.Call) (uint64, bool) {
			if c.Num == kernel.SysWrite && c.Args[0] == 1 {
				// Read, censor, write back through tracee memory.
				buf, err := c.Thread.Proc.AS.KLoad(c.Args[1], int(c.Args[2]))
				if err != nil {
					t.Errorf("arg read: %v", err)
					return 0, false
				}
				for i := range buf {
					if buf[i] == 'A' {
						buf[i] = 'B'
					}
				}
				if err := c.Thread.Proc.AS.KStore(c.Args[1], buf); err != nil {
					t.Errorf("arg write: %v", err)
				}
			}
			return 0, false
		},
	})
	p, err := s.Launch(w, "/bin/writer", []string{"writer"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(p); err != nil {
		t.Fatal(err)
	}
	if got := string(p.Stdout); got != "BBBB" {
		t.Fatalf("stdout = %q, want censored BBBB", got)
	}
}

func TestSUDPassiveInterposesNothing(t *testing.T) {
	w := interpose.NewWorld()
	w.MustRegister(buildGetpidProg(2))

	s := sud.NewPassive()
	p, err := s.Launch(w, "/bin/getpid", []string{"getpid"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(p); err != nil {
		t.Fatal(err)
	}
	if p.Exit.Code != p.PID {
		t.Fatalf("exit = %+v", p.Exit)
	}
	if s.Stats(p).SUD != 0 {
		t.Fatalf("passive SUD interposed %d calls", s.Stats(p).SUD)
	}
}

func TestSUDPrctlOffBypasses(t *testing.T) {
	// Pitfall P1b against the plain SUD interposer: the app disables
	// dispatch via prctl and every later syscall escapes.
	w := interpose.NewWorld()

	b := asm.NewBuilder("/bin/p1b")
	b.Needed(libc.Path)
	tx := b.Text()
	tx.Label("_start")
	// prctl(PR_SET_SYSCALL_USER_DISPATCH, OFF, 0, 0, 0)
	tx.MovImm32(cpu.RDI, kernel.PrSetSyscallUserDispatch)
	tx.MovImm32(cpu.RSI, kernel.PrSysDispatchOff)
	tx.MovImm32(cpu.RDX, 0)
	tx.MovImm32(cpu.R10, 0)
	tx.MovImm32(cpu.R8, 0)
	tx.CallSym("prctl")
	tx.CallSym("getpid")
	tx.MovImm32(cpu.RDI, 0)
	tx.CallSym("exit_group")
	w.MustRegister(b.MustBuild())

	var afterPrctl []uint64
	sawPrctl := false
	s := sud.New(interpose.Config{
		Hook: func(c *interpose.Call) (uint64, bool) {
			if c.Num == kernel.SysPrctl {
				sawPrctl = true
			} else if sawPrctl {
				afterPrctl = append(afterPrctl, c.Num)
			}
			return 0, false
		},
	})
	p, err := s.Launch(w, "/bin/p1b", []string{"p1b"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(p); err != nil {
		t.Fatal(err)
	}
	if !sawPrctl {
		t.Fatal("the disabling prctl itself was not interposed")
	}
	if len(afterPrctl) != 0 {
		t.Fatalf("interposed %v after SUD was disabled; P1b scenario broken", afterPrctl)
	}
	if p.Exit.Code != 0 {
		t.Fatalf("exit = %+v", p.Exit)
	}
}
