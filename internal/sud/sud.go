// Package sud implements a pure Syscall-User-Dispatch interposer: every
// system call outside the library's allowlisted range raises SIGSYS, the
// handler runs the hook and re-executes the call from interposer-owned
// code, then returns by rewriting the signal context. This is the
// exhaustive-but-slow baseline of the paper's Table 5 (≈15x native) and
// the engine K23's offline libLogger is built on.
package sud

import (
	"fmt"

	"k23/internal/asm"
	"k23/internal/cpu"
	"k23/internal/image"
	"k23/internal/interpose"
	"k23/internal/kernel"
	"k23/internal/libc"
	"k23/internal/loader"
)

// Hostcall id for the SIGSYS handler body.
const hcSigsys int32 = 110

// SUD is the pure-SUD Launcher.
type SUD struct {
	Config interpose.Config
	// Passive arms SUD but leaves the selector on ALLOW: no syscall is
	// interposed, yet every syscall pays the slower kernel entry path.
	// This is the paper's "SUD-no-interposition" configuration (§6.2.1).
	Passive bool
	// Seccomp switches the trap mechanism from Syscall User Dispatch to
	// a seccomp TRAP-all filter with a cookie-argument allow rule — the
	// seccomp-based exhaustive-interposition alternative the paper
	// mentions for the offline phase (§5.1). Unlike SUD it has no
	// selector and cannot be disabled by the application (no P1b).
	Seccomp bool
	img     *image.Image
}

// seccompCookie is the secret arg5 value the seccomp-mode handler tags
// re-executed syscalls with; the filter allowlists it.
const seccompCookie = 0x5EC0_FFEE_D00D

// New returns a SUD launcher.
func New(cfg interpose.Config) *SUD {
	s := &SUD{Config: cfg}
	s.img = s.buildLibrary()
	return s
}

// NewPassive returns the SUD-no-interposition configuration.
func NewPassive() *SUD {
	s := &SUD{Passive: true}
	s.img = s.buildLibrary()
	return s
}

// NewSeccompTrap returns a seccomp-TRAP-based exhaustive interposer.
func NewSeccompTrap(cfg interpose.Config) *SUD {
	s := &SUD{Config: cfg, Seccomp: true}
	s.img = s.buildLibrary()
	return s
}

// Name implements interpose.Launcher.
func (s *SUD) Name() string {
	switch {
	case s.Passive:
		return "sud-no-interposition"
	case s.Seccomp:
		return "seccomp-trap"
	default:
		return "sud"
	}
}

// LibraryPath is the injected library's path.
func (s *SUD) LibraryPath() string {
	if s.Seccomp {
		return "/usr/lib/libseccomptrap.so"
	}
	return "/usr/lib/libsud.so"
}

// state is the per-process runtime state.
type state struct {
	stats        interpose.Stats
	selectorAddr uint64
	frameAddr    uint64 // syscall frame consumed by sud_do_syscall
	doSyscall    uint64
}

func stateOf(p *kernel.Process) (*state, error) {
	st, ok := p.Interposer.(*state)
	if !ok {
		return nil, fmt.Errorf("sud: process %d not interposed", p.PID)
	}
	return st, nil
}

// Launch implements interpose.Launcher.
func (s *SUD) Launch(w *interpose.World, path string, argv, env []string) (*kernel.Process, error) {
	return s.LaunchWith(w, path, argv, env)
}

// LaunchWith is Launch with extra spawn options (used by K23's offline
// phase to attach its injection-guard tracer).
func (s *SUD) LaunchWith(w *interpose.World, path string, argv, env []string,
	opts ...loader.SpawnOption) (*kernel.Process, error) {
	if _, ok := w.Reg.Lookup(s.LibraryPath()); !ok {
		w.Reg.MustAdd(s.img)
	}
	env = kernel.SetEnv(append([]string(nil), env...), loader.LdPreloadVar, s.LibraryPath())
	return w.L.Spawn(path, argv, env, opts...)
}

// Stats implements interpose.Launcher.
func (s *SUD) Stats(p *kernel.Process) *interpose.Stats {
	st, err := stateOf(p)
	if err != nil {
		return &interpose.Stats{}
	}
	return &st.stats
}

var _ interpose.Launcher = (*SUD)(nil)

// buildLibrary assembles libsud.so.
func (s *SUD) buildLibrary() *image.Image {
	b := asm.NewBuilder(s.LibraryPath())
	b.Needed(libc.Path)

	d := b.Data()
	d.Label("sud_selector").Raw(kernel.SelectorAllow)
	d.Align(8)
	d.Label("sud_frame").Space(7 * 8) // rax + 6 args
	d.Label("sud_filter").Space(16 + 2*40) // seccomp mode: count, default, 2 rules

	t := b.Text()
	// SIGSYS handler: host logic, then rt_sigreturn from inside the
	// allowlisted range (so the return itself is not re-dispatched —
	// the standard SUD handler structure, §2.1).
	t.Label("sud_handler")
	t.Hostcall(hcSigsys)
	t.MovImm32(cpu.RAX, kernel.SysRtSigreturn)
	t.Syscall()

	// sud_do_syscall: execute the system call described by sud_frame.
	// Runs inside the allowlisted range: never re-dispatched.
	t.Label("sud_do_syscall")
	t.MovImmSym(cpu.R11, "sud_frame")
	t.Load(cpu.RAX, cpu.R11, 0)
	t.Load(cpu.RDI, cpu.R11, 8)
	t.Load(cpu.RSI, cpu.R11, 16)
	t.Load(cpu.RDX, cpu.R11, 24)
	t.Load(cpu.R10, cpu.R11, 32)
	t.Load(cpu.R8, cpu.R11, 40)
	t.Load(cpu.R9, cpu.R11, 48)
	t.Syscall()
	t.Ret()

	b.InitHost(s.initHost)
	return b.MustBuild()
}

// initHost installs the handler and arms SUD.
func (s *SUD) initHost(h any, base uint64) error {
	ih, ok := h.(*loader.InitHandle)
	if !ok {
		return fmt.Errorf("sud: unexpected init handle %T", h)
	}
	k, p, t := ih.L.K, ih.P, ih.T

	st := &state{}
	p.Interposer = st
	selOff, _ := s.img.SymbolOff("sud_selector")
	frameOff, _ := s.img.SymbolOff("sud_frame")
	handlerOff, _ := s.img.SymbolOff("sud_handler")
	doOff, _ := s.img.SymbolOff("sud_do_syscall")
	st.selectorAddr = base + selOff
	st.frameAddr = base + frameOff
	st.doSyscall = base + doOff

	k.RegisterHostcall(p, hcSigsys, &kernel.Hostcall{
		Name: "sud_sigsys", Cost: 40, Fn: s.hcSigsysFn,
	})

	gate := ih.Gate()
	sys := func(nr uint64, args ...uint64) (uint64, error) {
		var a [6]uint64
		a[0] = nr
		copy(a[1:], args)
		// Bounded transient retry: under chaos injection the gate's
		// syscalls can fail with EINTR/EAGAIN/ENOMEM/EMFILE; robust
		// init code re-issues them like the libc wrappers do.
		for tries := 0; ; tries++ {
			ret, err := k.CallGuestInfra(t, gate, a)
			if err != nil {
				return ret, err
			}
			if e, bad := kernel.IsErr(ret); bad && kernel.IsTransient(e) && tries < 64 {
				continue
			}
			return ret, nil
		}
	}

	// sigaction(SIGSYS, handler).
	if _, err := sys(kernel.SysRtSigaction, kernel.SIGSYS, base+handlerOff); err != nil {
		return err
	}
	if s.Seccomp {
		// Serialize the filter into the library's data block and
		// install it: TRAP everything except cookie-tagged calls and
		// rt_sigreturn.
		filterOff, _ := s.img.SymbolOff("sud_filter")
		filterAddr := base + filterOff
		words := []uint64{
			2, kernel.SeccompRetTrap,
			kernel.SeccompAnyNr, 1, 5, seccompCookie, kernel.SeccompRetAllow,
			kernel.SysRtSigreturn, 0, 0, 0, kernel.SeccompRetAllow,
		}
		for i, wv := range words {
			if err := p.AS.KStoreU64(filterAddr+uint64(8*i), wv); err != nil {
				return err
			}
		}
		if ret, err := sys(kernel.SysSeccomp, kernel.SeccompSetModeFilter, 0, filterAddr); err != nil {
			return err
		} else if e, isErr := kernel.IsErr(ret); isErr {
			return fmt.Errorf("sud: seccomp install: errno %d", e)
		}
		return nil
	}
	// prctl(PR_SET_SYSCALL_USER_DISPATCH, ON, allowStart, allowLen, selector)
	text, _ := s.img.Section(".text")
	if _, err := sys(kernel.SysPrctl, kernel.PrSetSyscallUserDispatch, kernel.PrSysDispatchOn,
		base+text.Off, text.Size, st.selectorAddr); err != nil {
		return err
	}
	if !s.Passive {
		if err := p.AS.Store(st.selectorAddr, []byte{kernel.SelectorBlock}, t.Core.PKRU); err != nil {
			return err
		}
	}
	return nil
}

// hcSigsysFn is the handler body: decode siginfo/ucontext, run the hook,
// execute (or emulate) the call, write the result into the saved context.
func (s *SUD) hcSigsysFn(k *kernel.Kernel, t *kernel.Thread) error {
	st, err := stateOf(t.Proc)
	if err != nil {
		return err
	}
	as := t.Proc.AS
	ctx := &t.Core.Ctx
	siginfoAddr := ctx.R[cpu.RSI]
	uctxAddr := ctx.R[cpu.RDX]

	nr, err := as.KLoadU64(siginfoAddr + kernel.SigInfoSyscall)
	if err != nil {
		return err
	}
	callAddr, err := as.KLoadU64(siginfoAddr + kernel.SigInfoCallAddr)
	if err != nil {
		return err
	}
	site := callAddr - uint64(cpu.SyscallInstLen)

	call := &interpose.Call{
		Kernel:    k,
		Thread:    t,
		Num:       nr,
		Site:      site,
		Mechanism: interpose.MechSUD,
	}
	interpose.Phase(call, kernel.PhHandler)
	for i, r := range cpu.SyscallArgRegs {
		v, err := as.KLoadU64(uctxAddr + kernel.UctxRegs + uint64(8*int(r)))
		if err != nil {
			return err
		}
		call.Args[i] = v
	}
	st.stats.SUD++
	interpose.Observe(call)

	var ret uint64
	emulated := false
	origNum := call.Num
	if s.Config.Hook != nil {
		interpose.Phase(call, kernel.PhHook)
		ret, emulated = s.Config.Hook(call)
	}
	if emulated {
		interpose.Resolve(call, call.Num, true)
		interpose.Phase(call, kernel.PhEmulate)
	} else if call.Num != origNum {
		interpose.Resolve(call, call.Num, false)
	}
	if !emulated {
		interpose.Phase(call, kernel.PhForward)
		if call.Num == kernel.SysClone {
			// See interpose.EmulateClone: the child must not resume
			// inside the do-syscall stub with a frameless stack.
			ret = interpose.EmulateClone(k, t, call.Args, callAddr, nil)
		} else {
			execArgs := call.Args
			if s.Seccomp {
				// Tag the re-execution so the filter lets it through.
				execArgs[5] = seccompCookie
			}
			var err error
			ret, err = ExecFrame(k, t, st.frameAddr, st.doSyscall, call.Num, execArgs)
			if err == kernel.ErrGuestWouldBlock {
				// Blocking call: resume the application at the trapped
				// instruction so it retries (and re-traps) once woken.
				interpose.Phase(call, kernel.PhHandlerRet)
				return as.KStoreU64(uctxAddr+kernel.UctxRIP, site)
			}
			if err != nil {
				return err
			}
		}
	}
	if s.Config.ResultHook != nil {
		ret = s.Config.ResultHook(call, ret)
	}
	interpose.Phase(call, kernel.PhHandlerRet)
	// Emulate the return by rewriting the saved context's RAX.
	return as.KStoreU64(uctxAddr+kernel.UctxRegs+uint64(8*int(cpu.RAX)), ret)
}

// ExecFrame writes a 7-word syscall frame (number + six arguments) and
// executes it through a do-syscall stub inside an allowlisted range. It
// is shared by the SUD-style interposers (sud, lazypoline, K23's
// fallback).
func ExecFrame(k *kernel.Kernel, t *kernel.Thread, frameAddr, stub uint64,
	nr uint64, args [6]uint64) (uint64, error) {
	as := t.Proc.AS
	if err := as.KStoreU64(frameAddr, nr); err != nil {
		return 0, err
	}
	for i, a := range args {
		if err := as.KStoreU64(frameAddr+uint64(8*(i+1)), a); err != nil {
			return 0, err
		}
	}
	return k.CallGuestInfra(t, stub, [6]uint64{})
}
