package zpoline

// Bitmap models zpoline's address-space-spanning rewritten-site bitmap
// (paper §4.4): one bit per virtual address across the 47-bit user
// address space. The virtual reservation is what pitfall P4b charges
// zpoline with; physical pages materialize only where bits are set. The
// host-side implementation is sparse, but reserved/resident accounting
// mirrors the real structure.
type Bitmap struct {
	words    map[uint64]uint64 // word index -> bits
	resident map[uint64]bool   // distinct resident 4 KiB bitmap pages
}

// AddressSpaceBits is the user virtual address width covered.
const AddressSpaceBits = 47

// NewBitmap returns an empty bitmap.
func NewBitmap() *Bitmap {
	return &Bitmap{
		words:    make(map[uint64]uint64),
		resident: make(map[uint64]bool),
	}
}

// Set marks addr as a rewritten site.
func (b *Bitmap) Set(addr uint64) {
	word := addr / 64
	b.words[word] |= 1 << (addr % 64)
	// One bitmap byte covers 8 addresses; one resident page covers
	// 8*4096 addresses.
	b.resident[addr/(8*4096)] = true
}

// Get reports whether addr is marked.
func (b *Bitmap) Get(addr uint64) bool {
	return b.words[addr/64]&(1<<(addr%64)) != 0
}

// ReservedBytes is the virtual reservation: 2^47 addresses / 8 bits per
// byte = 16 TiB per process.
func (b *Bitmap) ReservedBytes() uint64 { return uint64(1) << (AddressSpaceBits - 3) }

// ResidentBytes is the physically backed portion.
func (b *Bitmap) ResidentBytes() uint64 { return uint64(len(b.resident)) * 4096 }
