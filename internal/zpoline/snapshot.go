package zpoline

import (
	"k23/internal/interpose"
	"k23/internal/kernel"
)

// Checkpoint support: zpoline's per-process state implements
// kernel.HostState. The rewritten-site and ground-truth maps are
// semantic state (they decide which addresses the interposer claims),
// the bitmap is the P4b guard structure, and last tracks in-flight
// calls per thread — a checkpoint can land between a handler's enter
// and exit hostcalls, so it must survive the round trip.

type hostSnapshot struct {
	stats   interpose.Stats
	handler uint64
	sites   map[uint64]bool
	truth   map[uint64]bool
	bitmap  *Bitmap
	last    map[int]interpose.Call
}

// SnapshotHostState implements kernel.HostState.
func (st *state) SnapshotHostState() any {
	s := &hostSnapshot{
		stats:   st.stats,
		handler: st.handler,
		sites:   copyBoolMap(st.sites),
		truth:   copyBoolMap(st.truth),
		last:    copyCalls(st.last),
	}
	if st.bitmap != nil {
		s.bitmap = st.bitmap.clone()
	}
	return s
}

// RestoreHostState implements kernel.HostState.
func (st *state) RestoreHostState(v any) {
	s := v.(*hostSnapshot)
	st.stats = s.stats
	st.handler = s.handler
	st.sites = copyBoolMap(s.sites)
	st.truth = copyBoolMap(s.truth)
	st.last = restoreCalls(s.last)
	st.bitmap = nil
	if s.bitmap != nil {
		st.bitmap = s.bitmap.clone()
	}
}

var _ kernel.HostState = (*state)(nil)

// clone deep-copies the bitmap.
func (b *Bitmap) clone() *Bitmap {
	c := &Bitmap{
		words:    make(map[uint64]uint64, len(b.words)),
		resident: make(map[uint64]bool, len(b.resident)),
	}
	for w, bits := range b.words {
		c.words[w] = bits
	}
	for pg := range b.resident {
		c.resident[pg] = true
	}
	return c
}

func copyBoolMap(m map[uint64]bool) map[uint64]bool {
	if m == nil {
		return nil
	}
	c := make(map[uint64]bool, len(m))
	for k, v := range m {
		c[k] = v
	}
	return c
}

func copyCalls(m map[int]*interpose.Call) map[int]interpose.Call {
	c := make(map[int]interpose.Call, len(m))
	for tid, call := range m {
		c[tid] = *call
	}
	return c
}

func restoreCalls(m map[int]interpose.Call) map[int]*interpose.Call {
	c := make(map[int]*interpose.Call, len(m))
	for tid := range m {
		call := m[tid]
		c[tid] = &call
	}
	return c
}
