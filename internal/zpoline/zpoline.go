// Package zpoline reimplements the zpoline interposer (Yasukata et al.,
// USENIX ATC'23) on the simulated platform: load-time static disassembly
// locates SYSCALL/SYSENTER instructions, each is rewritten to the
// size-preserving `callq *%rax` (FF D0), and a nop-sled trampoline mapped
// at virtual address 0 routes the call — the syscall number in RAX *is*
// the landing offset — into the handler.
//
// Faithfully reproduced properties (pitfall matrix, Table 3):
//   - LD_PRELOAD-based injection: bypassable via environment scrubbing
//     (P1a fails).
//   - One-shot load-time rewriting: code generated or loaded later, and
//     anything linear-sweep disassembly mislabels, is missed or corrupted
//     (P2a, P3a fail); startup and vdso calls are missed (P2b fails).
//   - Page permissions are saved and restored around rewriting, and the
//     single rewriting step precedes any application concurrency, so the
//     runtime-rewriting pitfalls do not apply (P5 passes).
//   - The -ultra variant validates every trampoline entry against an
//     address-space bitmap (P4a passes) whose reserved footprint is the
//     P4b memory cost; the -default variant omits the check.
package zpoline

import (
	"fmt"

	"k23/internal/asm"
	"k23/internal/cpu"
	"k23/internal/disasm"
	"k23/internal/image"
	"k23/internal/interpose"
	"k23/internal/kernel"
	"k23/internal/libc"
	"k23/internal/loader"
	"k23/internal/mem"
)

// Hostcall ids used by the zpoline runtime.
const (
	hcEnter int32 = 100
	hcExit  int32 = 101
)

// Trampoline geometry: the sled covers syscall numbers 0..511, the
// handler springboard sits at offset 512 (as in the original, which
// supports numbers below ~500).
const (
	TrampolineSize = 512
	MaxSyscallNum  = TrampolineSize - 1
)

// Zpoline is the Launcher for zpoline-style interposition.
type Zpoline struct {
	Config interpose.Config
	img    *image.Image
}

// New returns a zpoline launcher with the given configuration.
func New(cfg interpose.Config) *Zpoline {
	z := &Zpoline{Config: cfg}
	z.img = z.buildLibrary()
	return z
}

// Name implements interpose.Launcher.
func (z *Zpoline) Name() string {
	if z.Config.NullExecCheck {
		return "zpoline-ultra"
	}
	return "zpoline-default"
}

// LibraryPath is where the interposition library lives.
func (z *Zpoline) LibraryPath() string { return "/usr/lib/libzpoline.so" }

// state is the per-process interposer state.
type state struct {
	z       *Zpoline
	stats   interpose.Stats
	handler uint64 // guest address of zp_handler
	sites   map[uint64]bool
	truth   map[uint64]bool // ground-truth sites (diagnostics only)
	bitmap  *Bitmap
	// last tracks the in-flight call per thread for the result hook.
	last map[int]*interpose.Call
}

// stateOf extracts the per-process state.
func stateOf(p *kernel.Process) (*state, error) {
	st, ok := p.Interposer.(*state)
	if !ok {
		return nil, fmt.Errorf("zpoline: process %d not interposed", p.PID)
	}
	return st, nil
}

// Launch implements interpose.Launcher.
func (z *Zpoline) Launch(w *interpose.World, path string, argv, env []string) (*kernel.Process, error) {
	if _, ok := w.Reg.Lookup(z.LibraryPath()); !ok {
		w.Reg.MustAdd(z.img)
	}
	env = kernel.SetEnv(append([]string(nil), env...), loader.LdPreloadVar, z.LibraryPath())
	return w.L.Spawn(path, argv, env)
}

// Stats implements interpose.Launcher.
func (z *Zpoline) Stats(p *kernel.Process) *interpose.Stats {
	st, err := stateOf(p)
	if err != nil {
		return &interpose.Stats{}
	}
	return &st.stats
}

var _ interpose.Launcher = (*Zpoline)(nil)

// buildLibrary assembles libzpoline.so: the handler the trampoline jumps
// into, plus a WRPKRU stub. The heavyweight init logic runs as an
// InitHost hook issuing real guest syscalls.
func (z *Zpoline) buildLibrary() *image.Image {
	b := asm.NewBuilder(z.LibraryPath())
	b.Needed(libc.Path)
	t := b.Text()

	// zp_handler: reached via trampoline springboard. App state: RAX =
	// syscall number, args in the syscall registers, return address on
	// the stack. zpoline preserves RCX/R11 across the handler (K23
	// later shaves these 4 instructions off, §6.2.1).
	t.Label("zp_handler")
	t.Push(cpu.RCX)
	t.Push(cpu.R11)
	t.Hostcall(hcEnter) // may abort (ultra); sets R11=1 to request skip
	t.Test(cpu.R11, cpu.R11)
	t.Jnz(".zp_skip")
	t.Label(".zp_syscall_site")
	t.Syscall() // the real system call, from interposer-owned code
	t.Label(".zp_skip")
	if z.Config.ResultHook != nil {
		t.Hostcall(hcExit)
	}
	t.Pop(cpu.R11)
	t.Pop(cpu.RCX)
	t.Ret()

	// zp_set_pkru(value): load the PKRU from RDI.
	t.Label("zp_set_pkru")
	t.Mov(cpu.RAX, cpu.RDI)
	t.Wrpkru()
	t.Ret()

	b.InitHost(z.initHost)
	return b.MustBuild()
}

// initHost is the library constructor: map the trampoline, protect it
// with PKU-XOM, disassemble the loaded code, rewrite the found sites.
func (z *Zpoline) initHost(h any, base uint64) error {
	ih, ok := h.(*loader.InitHandle)
	if !ok {
		return fmt.Errorf("zpoline: unexpected init handle %T", h)
	}
	k, p, t := ih.L.K, ih.P, ih.T

	st := &state{z: z, sites: make(map[uint64]bool), last: make(map[int]*interpose.Call)}
	if z.Config.NullExecCheck {
		st.bitmap = NewBitmap()
	}
	p.Interposer = st

	handlerOff, _ := z.img.SymbolOff("zp_handler")
	st.handler = base + handlerOff
	z.registerHostcalls(k, p)

	gate := ih.Gate()
	sys := func(nr uint64, args ...uint64) (uint64, error) {
		var a [6]uint64
		a[0] = nr
		copy(a[1:], args)
		// Bounded transient retry: under chaos injection the gate's
		// syscalls can fail with EINTR/EAGAIN/ENOMEM/EMFILE; robust
		// init code re-issues them like the libc wrappers do.
		for tries := 0; ; tries++ {
			ret, err := k.CallGuestInfra(t, gate, a)
			if err != nil {
				return ret, err
			}
			if e, bad := kernel.IsErr(ret); bad && kernel.IsTransient(e) && tries < 64 {
				continue
			}
			return ret, nil
		}
	}

	// 1. Map the trampoline page at virtual address 0.
	ret, err := sys(kernel.SysMmap, 0, mem.PageSize,
		kernel.ProtRead|kernel.ProtWrite|kernel.ProtExec, kernel.MapFixed)
	if err != nil {
		return fmt.Errorf("zpoline: trampoline mmap: %w", err)
	}
	if ret != 0 {
		return fmt.Errorf("zpoline: trampoline mmap landed at %#x", ret)
	}

	// 2. Write the nop sled and springboard.
	tramp := make([]byte, 0, TrampolineSize+12)
	for i := 0; i < TrampolineSize; i++ {
		tramp = append(tramp, cpu.ByteNop)
	}
	tramp = append(tramp, cpu.EncodeInst(cpu.Inst{Op: cpu.OpMovImm, A: cpu.R11, Imm: int64(st.handler)})...)
	tramp = append(tramp, cpu.EncodeInst(cpu.Inst{Op: cpu.OpJmpReg, A: cpu.R11})...)
	if err := t.Core.StoreAsSelf(0, tramp); err != nil {
		return fmt.Errorf("zpoline: trampoline write: %w", err)
	}

	// 3. PKU-XOM: allocate a key, tag the page, deny data access in
	// PKRU. Instruction fetches are unaffected — faithful PKU
	// semantics, and the root cause of P4a in checkless variants.
	key, err := sys(kernel.SysPkeyAlloc)
	if err != nil {
		return err
	}
	if _, err := sys(kernel.SysPkeyMprotect, 0, mem.PageSize,
		kernel.ProtRead|kernel.ProtWrite|kernel.ProtExec, key); err != nil {
		return err
	}
	setPkruOff, _ := z.img.SymbolOff("zp_set_pkru")
	pkru := uint64(mem.PKRU(0).DenyAccess(int(key)))
	if _, err := k.CallGuest(t, base+setPkruOff, [6]uint64{pkru}); err != nil {
		return err
	}

	// 4. Static disassembly + one-shot rewrite of everything executable
	// that is already loaded — and nothing that arrives later (P2a).
	st.truth = ih.L.TrueSites(p)
	return z.rewriteLoadedCode(k, p, t, sys, st)
}

// rewriteLoadedCode linear-sweeps every executable region except the
// interposer's own and rewrites each identified site.
func (z *Zpoline) rewriteLoadedCode(k *kernel.Kernel, p *kernel.Process, t *kernel.Thread,
	sys func(uint64, ...uint64) (uint64, error), st *state) error {
	for _, r := range p.AS.Regions() {
		if r.Perm&mem.PermExec == 0 {
			continue
		}
		switch r.Name {
		case z.LibraryPath(), loader.VdsoName:
			continue
		}
		if r.Start == 0 {
			continue // the trampoline itself
		}
		code, err := p.AS.KLoad(r.Start, int(r.Size()))
		if err != nil {
			continue
		}
		res := disasm.LinearSweep(code, r.Start)
		for _, site := range res.Sites {
			if err := z.rewriteSite(k, p, t, sys, st, site.Addr); err != nil {
				return err
			}
		}
	}
	st.stats.Sites = len(st.sites)
	if st.bitmap != nil {
		st.stats.MemReservedBytes = st.bitmap.ReservedBytes()
		st.stats.MemResidentBytes = st.bitmap.ResidentBytes()
		k.EmitGuardMem(p, "bitmap", st.stats.MemReservedBytes, st.stats.MemResidentBytes)
	}
	return nil
}

// rewriteSite replaces the two bytes at addr with `callq *%rax`,
// preserving page permissions around the write (zpoline does this
// properly; P5 does not apply to load-time rewriting).
func (z *Zpoline) rewriteSite(k *kernel.Kernel, p *kernel.Process, t *kernel.Thread,
	sys func(uint64, ...uint64) (uint64, error), st *state, addr uint64) error {
	if _, err := p.AS.KLoad(addr, 2); err != nil {
		return nil
	}
	genuine := st.truth[addr]
	if !genuine {
		// Static disassembly desync: zpoline cannot tell that this is
		// embedded data or a partial instruction — it rewrites anyway,
		// corrupting code or data (P3a). The ground-truth set (which
		// zpoline does not have in reality) only feeds this damage
		// counter and the audit stream, never behaviour.
		st.stats.Corruptions++
	}

	pageAddr := mem.PageBase(addr)
	span := addr + uint64(cpu.SyscallInstLen) - pageAddr // page-rounded by mprotect
	perm, _, okPerm := p.AS.PermAt(addr)
	if !okPerm {
		return nil
	}
	if _, err := sys(kernel.SysMprotect, pageAddr, span,
		kernel.ProtRead|kernel.ProtWrite|kernel.ProtExec); err != nil {
		return err
	}
	if err := t.Core.StoreAsSelf(addr, cpu.CallRaxBytes); err != nil {
		return err
	}
	// Record the site before issuing further syscalls: if the rewritten
	// site is itself on the interposer's syscall path (the dynamic
	// linker's, say), the very next call below already rides the
	// trampoline and must pass the bitmap check.
	st.sites[addr] = true
	if st.bitmap != nil {
		st.bitmap.Set(addr)
	}
	if genuine {
		k.EmitRewrite(t, addr, "genuine")
	} else {
		k.EmitRewrite(t, addr, "misidentified")
	}
	// Restore the saved permission.
	if _, err := sys(kernel.SysMprotect, pageAddr, span, kernel.PermToProt(perm)); err != nil {
		return err
	}
	return nil
}

// registerHostcalls installs the handler's host logic.
func (z *Zpoline) registerHostcalls(k *kernel.Kernel, p *kernel.Process) {
	k.RegisterHostcall(p, hcEnter, &kernel.Hostcall{
		Name: "zp_enter",
		Cost: 13,
		Fn:   z.hcEnterFn,
	})
	k.RegisterHostcall(p, hcExit, &kernel.Hostcall{
		Name: "zp_exit",
		Cost: 4,
		Fn:   z.hcExitFn,
	})
}

// hcEnterFn runs at handler entry: NULL-exec check (ultra), user hook,
// argument application.
func (z *Zpoline) hcEnterFn(k *kernel.Kernel, t *kernel.Thread) error {
	st, err := stateOf(t.Proc)
	if err != nil {
		return err
	}
	ctx := &t.Core.Ctx
	// Stack: [rsp] = saved r11, [rsp+8] = saved rcx, [rsp+16] = return
	// address pushed by the rewritten call.
	retAddr, err := t.Proc.AS.KLoadU64(ctx.R[cpu.RSP] + 16)
	if err != nil {
		return fmt.Errorf("zpoline: cannot read return address: %w", err)
	}
	site := retAddr - uint64(cpu.CallRegInstLen)
	k.EmitPhase(t, kernel.PhHandler, ctx.R[cpu.RAX], site, interpose.MechRewrite.String())

	if z.Config.NullExecCheck {
		// Bitmap validation: abort unless the call originated from a
		// known rewritten site (the anti-P4a runtime check, §4.4).
		t.ExtraCycles += BitmapCheckCost
		if !st.bitmap.Get(site) {
			st.stats.NullExecAborts++
			return fmt.Errorf("zpoline: trampoline entry from unknown site %#x", site)
		}
	}

	st.stats.Rewritten++
	call := &interpose.Call{
		Kernel:    k,
		Thread:    t,
		Num:       ctx.R[cpu.RAX],
		Site:      site,
		Mechanism: interpose.MechRewrite,
	}
	for i := range call.Args {
		call.Args[i] = ctx.Arg(i)
	}
	st.last[t.TID] = call
	interpose.Observe(call)
	if z.Config.Hook != nil {
		origNum := call.Num
		interpose.Phase(call, kernel.PhHook)
		if ret, emulated := z.Config.Hook(call); emulated {
			interpose.Resolve(call, call.Num, true)
			interpose.Phase(call, kernel.PhEmulate)
			ctx.R[cpu.RAX] = ret
			ctx.R[cpu.R11] = 1
			return nil
		}
		if call.Num != origNum {
			interpose.Resolve(call, call.Num, false)
		}
		// Apply (possibly modified) number and arguments.
		ctx.R[cpu.RAX] = call.Num
		for i, a := range call.Args {
			ctx.SetArg(i, a)
		}
	}
	if call.Num == kernel.SysClone {
		// clone must not execute inside the handler: the child would
		// resume here with a frameless stack (see interpose.EmulateClone).
		interpose.Phase(call, kernel.PhForward)
		ctx.R[cpu.RAX] = interpose.EmulateClone(k, t, call.Args, retAddr, nil)
		ctx.R[cpu.R11] = 1
		return nil
	}
	// The trampoline re-issues the (possibly renumbered) call with a real
	// SYSCALL instruction next.
	interpose.Phase(call, kernel.PhForward)
	ctx.R[cpu.R11] = 0
	return nil
}

// hcExitFn runs after the (real or emulated) syscall: result hook.
func (z *Zpoline) hcExitFn(k *kernel.Kernel, t *kernel.Thread) error {
	st, err := stateOf(t.Proc)
	if err != nil {
		return err
	}
	call := st.last[t.TID]
	if call == nil {
		call = &interpose.Call{Kernel: k, Thread: t, Mechanism: interpose.MechRewrite}
	}
	ctx := &t.Core.Ctx
	if z.Config.ResultHook != nil {
		ctx.R[cpu.RAX] = z.Config.ResultHook(call, ctx.R[cpu.RAX])
	}
	interpose.Phase(call, kernel.PhHandlerRet)
	return nil
}

// BitmapCheckCost is the cycle cost of one bitmap membership test
// (cheap: two shifts and a load; cf. the robin-set's ~4x cost, §6.2.1).
const BitmapCheckCost = 6
