package zpoline_test

import (
	"testing"

	"k23/internal/asm"
	"k23/internal/cpu"
	"k23/internal/image"
	"k23/internal/interpose"
	"k23/internal/kernel"
	"k23/internal/libc"
	"k23/internal/zpoline"
)

// buildGetpidProg calls getpid N times and exits with the last result.
func buildGetpidProg(n int) *image.Image {
	b := asm.NewBuilder("/bin/getpid")
	b.Needed(libc.Path)
	tx := b.Text()
	tx.Label("_start")
	tx.MovImm32(cpu.RBX, uint32(n))
	tx.Label(".loop")
	tx.CallSym("getpid")
	tx.AddImm(cpu.RBX, -1)
	tx.Jnz(".loop")
	tx.Mov(cpu.RDI, cpu.RAX)
	tx.CallSym("exit_group")
	return b.MustBuild()
}

func TestZpolineInterposesViaRewrite(t *testing.T) {
	w := interpose.NewWorld()
	w.MustRegister(buildGetpidProg(5))

	var seen []uint64
	z := zpoline.New(interpose.Config{
		Hook: func(c *interpose.Call) (uint64, bool) {
			seen = append(seen, c.Num)
			if c.Mechanism != interpose.MechRewrite {
				t.Errorf("mechanism = %v, want rewrite", c.Mechanism)
			}
			return 0, false
		},
	})
	p, err := z.Launch(w, "/bin/getpid", []string{"getpid"}, nil)
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	if err := w.Run(p); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if p.Exit.Code != p.PID {
		t.Fatalf("exit = %+v, want pid %d (getpid result must pass through)", p.Exit, p.PID)
	}
	getpids := 0
	for _, nr := range seen {
		if nr == kernel.SysGetpid {
			getpids++
		}
	}
	if getpids != 5 {
		t.Fatalf("hook saw %d getpid calls, want 5 (seen: %v)", getpids, seen)
	}
	st := z.Stats(p)
	if st.Rewritten < 5 {
		t.Fatalf("stats.Rewritten = %d", st.Rewritten)
	}
	if st.Sites == 0 {
		t.Fatal("no sites rewritten")
	}
	if st.Corruptions != 0 {
		t.Fatalf("clean binary caused %d corrupting rewrites", st.Corruptions)
	}
}

func TestZpolineHookEmulates(t *testing.T) {
	w := interpose.NewWorld()
	w.MustRegister(buildGetpidProg(1))

	z := zpoline.New(interpose.Config{
		Hook: func(c *interpose.Call) (uint64, bool) {
			if c.Num == kernel.SysGetpid {
				return 123, true // emulate
			}
			return 0, false
		},
	})
	p, err := z.Launch(w, "/bin/getpid", []string{"getpid"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(p); err != nil {
		t.Fatal(err)
	}
	if p.Exit.Code != 123 {
		t.Fatalf("exit = %+v, want emulated 123", p.Exit)
	}
}

func TestZpolineMissesStartupSyscalls(t *testing.T) {
	// P2b: nothing before library load is interposed.
	w := interpose.NewWorld()
	w.MustRegister(buildGetpidProg(1))

	var openats int
	z := zpoline.New(interpose.Config{
		Hook: func(c *interpose.Call) (uint64, bool) {
			if c.Num == kernel.SysOpenat {
				openats++
			}
			return 0, false
		},
	})
	p, err := z.Launch(w, "/bin/getpid", []string{"getpid"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(p); err != nil {
		t.Fatal(err)
	}
	// The loader issued many openat calls; zpoline saw none of them.
	if w.L.StartupSyscalls(p) < 20 {
		t.Fatalf("startup syscalls = %d; scenario broken", w.L.StartupSyscalls(p))
	}
	if openats != 0 {
		t.Fatalf("zpoline saw %d startup openat calls; should be blind to them (P2b)", openats)
	}
}

func TestZpolineMissesDlopenedCode(t *testing.T) {
	// P2a: a plugin loaded at runtime contains a syscall site zpoline
	// never rewrote — its calls bypass interposition.
	w := interpose.NewWorld()

	plug := asm.NewBuilder("/usr/lib/late.so")
	plug.Needed(libc.Path)
	pt := plug.Text()
	pt.Label("late_getpid")
	pt.MovImm32(cpu.RAX, kernel.SysGetpid)
	pt.Syscall()
	pt.Ret()
	w.MustRegister(plug.MustBuild())

	b := asm.NewBuilder("/bin/dlhost")
	b.Needed(libc.Path)
	d := b.Data()
	d.Label(".path").CString("/usr/lib/late.so")
	d.Label(".sym").CString("late_getpid")
	tx := b.Text()
	tx.Label("_start")
	tx.MovImmSym(cpu.RDI, ".path")
	tx.CallSym("dlopen")
	// Resolve and call the plugin's getpid via dlsym.
	tx.MovImmSym(cpu.RDI, ".sym")
	tx.CallSym("dlsym")
	tx.Test(cpu.RAX, cpu.RAX)
	tx.Jz(".fail")
	tx.CallReg(cpu.RAX)
	tx.Mov(cpu.RDI, cpu.RAX)
	tx.CallSym("exit_group")
	tx.Label(".fail")
	tx.MovImm32(cpu.RDI, 77)
	tx.CallSym("exit_group")
	w.MustRegister(b.MustBuild())

	var hookedGetpids int
	z := zpoline.New(interpose.Config{
		Hook: func(c *interpose.Call) (uint64, bool) {
			if c.Num == kernel.SysGetpid {
				hookedGetpids++
			}
			return 0, false
		},
	})
	p, err := z.Launch(w, "/bin/dlhost", []string{"dlhost"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(p); err != nil {
		t.Fatal(err)
	}
	if p.Exit.Code != p.PID {
		t.Fatalf("exit = %+v (late_getpid must still work natively)", p.Exit)
	}
	if hookedGetpids != 0 {
		t.Fatalf("zpoline interposed %d dlopen'd getpid calls; pitfall P2a says it cannot", hookedGetpids)
	}
}

func TestZpolineCorruptsEmbeddedData(t *testing.T) {
	// P3a: embedded data desynchronizes the sweep; zpoline rewrites
	// inside it.
	w := interpose.NewWorld()

	b := asm.NewBuilder("/bin/databed")
	b.Needed(libc.Path)
	tx := b.Text()
	tx.Label("_start")
	tx.Jmp(".after") // jump over the embedded data
	tx.Label("table")
	tx.Raw(0xAB, 0x0F, 0x05, 0xAB) // jump-table bytes resembling SYSCALL
	tx.Label(".after")
	tx.MovImm32(cpu.RDI, 0)
	tx.CallSym("exit_group")
	w.MustRegister(b.MustBuild())

	z := zpoline.New(interpose.Config{})
	p, err := z.Launch(w, "/bin/databed", []string{"databed"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(p); err != nil {
		t.Fatal(err)
	}
	if z.Stats(p).Corruptions == 0 {
		t.Fatal("zpoline did not corrupt the embedded data (P3a scenario broken)")
	}
	// The bytes at the table were clobbered with FF D0.
	li := findImage(w, p, "/bin/databed")
	tableOff := li.Image.Symbols["table"]
	got, err := p.AS.KLoad(li.Base+tableOff+1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 0xFF || got[1] != 0xD0 {
		t.Fatalf("embedded data not rewritten: % x", got)
	}
}

func findImage(w *interpose.World, p *kernel.Process, path string) (li liRet) {
	for _, l := range w.L.Loaded(p) {
		if l.Image.Path == path {
			return liRet{Image: l.Image, Base: l.Base}
		}
	}
	return liRet{}
}

type liRet struct {
	Image *image.Image
	Base  uint64
}

func TestZpolineDefaultSilentOnNullCall(t *testing.T) {
	// P4a flavour: with the trampoline mapped and no check, calling a
	// NULL function pointer does NOT crash — it silently funnels into
	// the interposer as a bogus "syscall" whose number is whatever RAX
	// held.
	w := interpose.NewWorld()

	b := asm.NewBuilder("/bin/nullcall")
	b.Needed(libc.Path)
	tx := b.Text()
	tx.Label("_start")
	tx.MovImm32(cpu.RAX, 39) // rax: pretend leftover syscall number
	tx.Xor(cpu.R9, cpu.R9)
	tx.Mov(cpu.RAX, cpu.R9) // rax = 0: the NULL "function pointer"
	tx.CallReg(cpu.RAX)     // call NULL
	// If we return (!) exit 55 to mark silent survival.
	tx.MovImm32(cpu.RDI, 55)
	tx.CallSym("exit_group")
	w.MustRegister(b.MustBuild())

	z := zpoline.New(interpose.Config{}) // default: no NULL-exec check
	p, err := z.Launch(w, "/bin/nullcall", []string{"nullcall"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(p); err != nil {
		t.Fatal(err)
	}
	if p.Exit.Signal != 0 || p.Exit.Code != 55 {
		t.Fatalf("exit = %+v; want silent survival (the debugging nightmare)", p.Exit)
	}
}

func TestZpolineUltraAbortsNullCall(t *testing.T) {
	// zpoline-ultra's bitmap check turns the same NULL call into a
	// controlled abort (P4a addressed).
	w := interpose.NewWorld()

	b := asm.NewBuilder("/bin/nullcall")
	b.Needed(libc.Path)
	tx := b.Text()
	tx.Label("_start")
	tx.Xor(cpu.RAX, cpu.RAX)
	tx.CallReg(cpu.RAX)
	tx.MovImm32(cpu.RDI, 55)
	tx.CallSym("exit_group")
	w.MustRegister(b.MustBuild())

	z := zpoline.New(interpose.Config{NullExecCheck: true})
	p, err := z.Launch(w, "/bin/nullcall", []string{"nullcall"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	_ = w.Run(p) // the abort surfaces as a process kill
	if p.Exit.Signal == 0 {
		t.Fatalf("exit = %+v; ultra variant must abort the unknown entry", p.Exit)
	}
	if z.Stats(p).NullExecAborts != 1 {
		t.Fatalf("NullExecAborts = %d", z.Stats(p).NullExecAborts)
	}
}

func TestZpolineUltraBitmapMemoryOverhead(t *testing.T) {
	// P4b: the bitmap reserves tens of GiB of virtual space per process.
	w := interpose.NewWorld()
	w.MustRegister(buildGetpidProg(1))
	z := zpoline.New(interpose.Config{NullExecCheck: true})
	p, err := z.Launch(w, "/bin/getpid", []string{"getpid"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	st := z.Stats(p)
	if st.MemReservedBytes < 1<<40 {
		t.Fatalf("bitmap reservation = %d bytes; want the P4b-scale footprint", st.MemReservedBytes)
	}
	if st.MemResidentBytes == 0 || st.MemResidentBytes > 1<<20 {
		t.Fatalf("resident = %d bytes", st.MemResidentBytes)
	}
}

func TestBitmap(t *testing.T) {
	bm := zpoline.NewBitmap()
	addrs := []uint64{0, 1, 63, 64, 0x55000123, 1 << 46}
	for _, a := range addrs {
		bm.Set(a)
	}
	for _, a := range addrs {
		if !bm.Get(a) {
			t.Fatalf("Get(%#x) = false", a)
		}
	}
	if bm.Get(2) || bm.Get(0x55000124) {
		t.Fatal("bitmap false positive")
	}
	if bm.ReservedBytes() != 1<<44 {
		t.Fatalf("ReservedBytes = %d", bm.ReservedBytes())
	}
}
