// Package disasm implements static disassembly over the simulated ISA —
// the component zpoline-style load-time rewriting depends on, together
// with its well-documented failure modes (paper §4.2, §4.3):
//
//   - Linear sweep decodes sequentially from the region start. Embedded
//     data (jump tables, literals) desynchronizes it: subsequent decodes
//     may start mid-instruction, so real SYSCALL sites are overlooked
//     (P2a) and spurious ones are "found" inside immidiates or data
//     (P3a).
//   - On an undecodable byte it resynchronizes by skipping one byte, as
//     objdump-style tools do, which is precisely what makes the
//     misidentifications silent.
//
// The package also provides FindByteSites, the pattern-scan lower bound
// (every 0F 05 / 0F 34 byte pair), used by tests as a misidentification
// oracle.
package disasm

import (
	"sort"

	"k23/internal/cpu"
)

// SiteKind distinguishes SYSCALL from SYSENTER sites.
type SiteKind uint8

// Site kinds.
const (
	KindSyscall SiteKind = iota
	KindSysenter
)

// Site is a located system call instruction.
type Site struct {
	Addr uint64
	Kind SiteKind
}

// Result summarizes one linear sweep.
type Result struct {
	Sites []Site
	// Resyncs counts undecodable bytes skipped (desync indicators).
	Resyncs int
	// Decoded counts successfully decoded instructions.
	Decoded int
}

// LinearSweep disassembles code (mapped at base) from its first byte and
// collects every decoded SYSCALL/SYSENTER. It is deliberately faithful to
// the limitations of static disassembly rather than to ground truth.
func LinearSweep(code []byte, base uint64) Result {
	var res Result
	off := 0
	for off < len(code) {
		inst, err := cpu.Decode(code[off:])
		if err != nil {
			// Resynchronize one byte forward, as linear disassemblers
			// do. Anything decoded after this point may be skewed.
			res.Resyncs++
			off++
			continue
		}
		res.Decoded++
		switch inst.Op {
		case cpu.OpSyscall:
			res.Sites = append(res.Sites, Site{Addr: base + uint64(off), Kind: KindSyscall})
		case cpu.OpSysenter:
			res.Sites = append(res.Sites, Site{Addr: base + uint64(off), Kind: KindSysenter})
		}
		off += inst.Len
	}
	return res
}

// FindByteSites scans for raw 0F 05 / 0F 34 byte pairs regardless of
// instruction boundaries. This over-approximates: it reports every
// partial-instruction and embedded-data occurrence too. The difference
// between FindByteSites and ground truth is the raw material of pitfalls
// P3a/P3b.
func FindByteSites(code []byte, base uint64) []Site {
	var out []Site
	for i := 0; i+1 < len(code); i++ {
		if code[i] != cpu.BytePrefix0F {
			continue
		}
		switch code[i+1] {
		case cpu.ByteSyscall2:
			out = append(out, Site{Addr: base + uint64(i), Kind: KindSyscall})
		case cpu.ByteSysenter2:
			out = append(out, Site{Addr: base + uint64(i), Kind: KindSysenter})
		}
	}
	return out
}

// SymbolSweep disassembles each inter-symbol range independently,
// starting at known function entries instead of the region base. On
// symbol-rich images this avoids the desynchronization that makes plain
// linear sweep misidentify sites: decoding re-anchors at every symbol, so
// embedded data between functions cannot skew an entire region. It is
// the static half of the paper's proposed dynamic+static offline
// analysis (§7).
//
// symOffsets are offsets of symbols within code; they need not be
// sorted. Only sites strictly inside a symbol-delimited range are
// reported.
func SymbolSweep(code []byte, base uint64, symOffsets []uint64) []Site {
	offs := append([]uint64(nil), symOffsets...)
	sort.Slice(offs, func(i, j int) bool { return offs[i] < offs[j] })
	var out []Site
	seen := map[uint64]bool{}
	for i, start := range offs {
		if start >= uint64(len(code)) {
			continue
		}
		end := uint64(len(code))
		if i+1 < len(offs) && offs[i+1] < end {
			end = offs[i+1]
		}
		off := start
		for off < end {
			inst, err := cpu.Decode(code[off:end])
			if err != nil {
				// Unlike the region-wide sweep, a symbol-anchored range
				// that stops decoding is abandoned rather than
				// resynchronized: no guessing inside functions.
				break
			}
			if inst.Op == cpu.OpSyscall || inst.Op == cpu.OpSysenter {
				addr := base + off
				if !seen[addr] {
					seen[addr] = true
					kind := KindSyscall
					if inst.Op == cpu.OpSysenter {
						kind = KindSysenter
					}
					out = append(out, Site{Addr: addr, Kind: kind})
				}
			}
			off += uint64(inst.Len)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// Diff partitions found sites against ground truth, yielding the
// overlooked (P2a) and misidentified (P3a) sets.
func Diff(found []Site, truth []uint64) (correct, misidentified []Site, overlooked []uint64) {
	truthSet := make(map[uint64]bool, len(truth))
	for _, a := range truth {
		truthSet[a] = true
	}
	foundSet := make(map[uint64]bool, len(found))
	for _, s := range found {
		foundSet[s.Addr] = true
		if truthSet[s.Addr] {
			correct = append(correct, s)
		} else {
			misidentified = append(misidentified, s)
		}
	}
	for _, a := range truth {
		if !foundSet[a] {
			overlooked = append(overlooked, a)
		}
	}
	return correct, misidentified, overlooked
}
