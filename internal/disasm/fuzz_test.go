package disasm

import (
	"testing"

	"k23/internal/cpu"
)

// FuzzLinearSweep: the sweep must terminate and never panic on arbitrary
// bytes, make forward progress accounting (decoded instructions plus
// resyncs cover the buffer exactly), never report a site outside the
// buffer, and never find fewer candidate pairs than it reports sites —
// every reported site must be a literal 0F 05 / 0F 34 pair, since those
// opcodes decode from exactly those bytes.
func FuzzLinearSweep(f *testing.F) {
	// The P3a embedded-data blob and the P2a immediate-embedded syscall,
	// the two patterns the paper shows desynchronizing linear sweeps.
	f.Add([]byte{0xAB, 0x0F, 0x05, 0xAB}, uint64(0x1000))
	f.Add([]byte{0xB8, 0x00, 0x0F, 0x05, 0x90, 0x90, 0x90, 0x90, 0x90, 0x90}, uint64(0x401000))
	f.Add([]byte{0x0F, 0x05, 0x0F, 0x34, 0xF4}, uint64(0))
	f.Add([]byte{}, uint64(0))
	f.Add([]byte{0x0F}, uint64(1<<40))
	// From the shared-state audit: the fleet's spin loop and trampoline
	// bytes interleaved with syscall sites.
	f.Add([]byte{0xEB, 0xFE, 0x0F, 0x05}, uint64(0x2000))
	f.Add([]byte{0xCC, 0x0F, 0x05, 0xCC, 0x0F, 0x34}, uint64(0x3000))
	f.Fuzz(func(t *testing.T, code []byte, base uint64) {
		res := LinearSweep(code, base)
		if res.Decoded < 0 || res.Resyncs < 0 {
			t.Fatalf("negative counters: %+v", res)
		}
		if res.Resyncs > len(code) {
			t.Fatalf("%d resyncs for %d bytes", res.Resyncs, len(code))
		}
		byteSites := FindByteSites(code, base)
		if len(res.Sites) > len(byteSites) {
			t.Fatalf("sweep found %d sites but only %d raw 0F05/0F34 pairs exist",
				len(res.Sites), len(byteSites))
		}
		raw := make(map[uint64]SiteKind, len(byteSites))
		for _, s := range byteSites {
			raw[s.Addr] = s.Kind
		}
		for _, s := range res.Sites {
			// Offset arithmetic, so huge fuzzed bases that wrap around
			// the 64-bit space don't produce spurious failures.
			if off := s.Addr - base; off+1 >= uint64(len(code)) {
				t.Fatalf("site %#x at offset %d outside %d-byte buffer", s.Addr, off, len(code))
			}
			if k, ok := raw[s.Addr]; !ok || k != s.Kind {
				t.Fatalf("site %#x kind %d has no matching raw byte pair", s.Addr, s.Kind)
			}
		}
		// The sweep must consume the whole buffer: decoded lengths plus
		// single-byte resyncs account for every byte.
		var consumed int
		off := 0
		for off < len(code) {
			inst, err := cpu.Decode(code[off:])
			if err != nil {
				off++
			} else {
				off += inst.Len
			}
			consumed++
			if consumed > len(code) {
				t.Fatal("sweep does not make forward progress")
			}
		}
		if got := res.Decoded + res.Resyncs; got != consumed {
			t.Fatalf("decoded+resyncs = %d, want %d steps", got, consumed)
		}
	})
}
