package disasm

import (
	"testing"

	"k23/internal/asm"
	"k23/internal/cpu"
	"k23/internal/mem"
)

// textOf builds an image from the section callback and returns its .text
// bytes plus the offsets of labels.
func textOf(t *testing.T, build func(tx *asm.SectionBuilder)) ([]byte, map[string]uint64) {
	t.Helper()
	b := asm.NewBuilder("/tmp/t")
	tx := b.Text()
	build(tx)
	im, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	sec, _ := im.Section(".text")
	return sec.Data, im.Symbols
}

func TestLinearSweepFindsPlainSites(t *testing.T) {
	code, syms := textOf(t, func(tx *asm.SectionBuilder) {
		tx.Label("_start")
		tx.MovImm32(cpu.RAX, 39)
		tx.Label("site1")
		tx.Syscall()
		tx.MovImm32(cpu.RAX, 60)
		tx.Label("site2")
		tx.Sysenter()
		tx.Ret()
	})
	res := LinearSweep(code, 0)
	if len(res.Sites) != 2 {
		t.Fatalf("found %d sites, want 2: %+v", len(res.Sites), res.Sites)
	}
	if res.Sites[0].Addr != syms["site1"] || res.Sites[0].Kind != KindSyscall {
		t.Fatalf("site1 = %+v", res.Sites[0])
	}
	if res.Sites[1].Addr != syms["site2"] || res.Sites[1].Kind != KindSysenter {
		t.Fatalf("site2 = %+v", res.Sites[1])
	}
	if res.Resyncs != 0 {
		t.Fatalf("unexpected resyncs on clean code: %d", res.Resyncs)
	}
}

func TestLinearSweepMisidentifiesImmediateBytes(t *testing.T) {
	// P3a raw material: a 64-bit immediate containing 0F 05. Linear
	// sweep decodes the MOVIMM correctly here, so no false positive —
	// but after embedded data desyncs the sweep, the immediate bytes
	// can be decoded as a SYSCALL.
	code, syms := textOf(t, func(tx *asm.SectionBuilder) {
		tx.Label("_start")
		// Embedded data: a jump-table-like blob that is not valid code.
		// 0xAB is undecodable, forcing byte-at-a-time resync; the 0F 05
		// inside the data then looks like a SYSCALL instruction.
		tx.Label("data")
		tx.Raw(0xAB, 0x0F, 0x05, 0xAB, 0xAB)
		tx.Label("real")
		tx.MovImm32(cpu.RAX, 1)
		tx.Syscall()
		tx.Ret()
	})
	res := LinearSweep(code, 0)
	var addrs []uint64
	for _, s := range res.Sites {
		addrs = append(addrs, s.Addr)
	}
	// The data's fake site at offset 1 is misidentified.
	found := map[uint64]bool{}
	for _, a := range addrs {
		found[a] = true
	}
	if !found[syms["data"]+1] {
		t.Fatalf("linear sweep did not misidentify embedded data: %v", addrs)
	}
	if res.Resyncs == 0 {
		t.Fatal("expected resyncs over embedded data")
	}
}

func TestLinearSweepOverlooksDesyncedSite(t *testing.T) {
	// P2a: data whose decode consumes the following real instruction.
	// 0xB8 (MOVIMM) at the end of a data blob swallows the next 9 bytes
	// — including a real SYSCALL — as its immediate.
	code, syms := textOf(t, func(tx *asm.SectionBuilder) {
		tx.Label("_start")
		tx.Label("data")
		tx.Raw(0xB8, 0x00) // looks like MOVIMM reg=0, imm = next 8 bytes
		tx.Label("real_site")
		tx.Syscall() // 0F 05 swallowed into the bogus immediate
		tx.Nop()
		tx.Nop()
		tx.Nop()
		tx.Nop()
		tx.Nop()
		tx.Nop()
		tx.Ret()
	})
	res := LinearSweep(code, 0)
	for _, s := range res.Sites {
		if s.Addr == syms["real_site"] {
			t.Fatalf("sweep unexpectedly found the swallowed site; layout broken")
		}
	}
	// Ground truth says there IS a site there.
	byteSites := FindByteSites(code, 0)
	ok := false
	for _, s := range byteSites {
		if s.Addr == syms["real_site"] {
			ok = true
		}
	}
	if !ok {
		t.Fatal("byte scan lost the ground-truth site; test layout broken")
	}
}

func TestFindByteSitesOverapproximates(t *testing.T) {
	code := []byte{
		0x0F, 0x05, // real-looking syscall
		0x90,
		0x0F, 0x34, // sysenter bytes
		0xB8, 0x00, 0x0F, 0x05, 0, 0, 0, 0, 0, 0, // imm contains 0F 05
	}
	sites := FindByteSites(code, 0x1000)
	if len(sites) != 3 {
		t.Fatalf("found %d byte sites, want 3: %+v", len(sites), sites)
	}
	if sites[0].Addr != 0x1000 || sites[1].Addr != 0x1003 || sites[2].Addr != 0x1007 {
		t.Fatalf("sites = %+v", sites)
	}
	if sites[1].Kind != KindSysenter {
		t.Fatalf("second site kind = %v", sites[1].Kind)
	}
}

func TestDiff(t *testing.T) {
	found := []Site{{Addr: 1}, {Addr: 2}, {Addr: 3}}
	truth := []uint64{2, 3, 4}
	correct, mis, overlooked := Diff(found, truth)
	if len(correct) != 2 || len(mis) != 1 || len(overlooked) != 1 {
		t.Fatalf("diff = %d/%d/%d", len(correct), len(mis), len(overlooked))
	}
	if mis[0].Addr != 1 || overlooked[0] != 4 {
		t.Fatalf("mis=%+v overlooked=%v", mis, overlooked)
	}
}

func TestSweepTerminatesOnArbitraryBytes(t *testing.T) {
	// Fuzz-ish: the sweep must always terminate and stay in bounds.
	blob := make([]byte, 4096)
	seed := uint64(12345)
	for i := range blob {
		seed = seed*6364136223846793005 + 1442695040888963407
		blob[i] = byte(seed >> 33)
	}
	res := LinearSweep(blob, 0)
	if res.Decoded == 0 && res.Resyncs == 0 {
		t.Fatal("sweep did nothing")
	}
	for _, s := range res.Sites {
		if s.Addr >= uint64(len(blob)) {
			t.Fatalf("site out of bounds: %#x", s.Addr)
		}
	}
	_ = mem.PageSize
}

func TestSymbolSweepAvoidsDataDesync(t *testing.T) {
	// Layout: fn1 (with a real site), inter-function data blob containing
	// SYSCALL bytes, fn2 (with a real site). A plain linear sweep trips
	// over the blob; the symbol-anchored sweep does not.
	code, syms := textOf(t, func(tx *asm.SectionBuilder) {
		tx.Label("fn1")
		tx.MovImm32(cpu.RAX, 1)
		tx.Syscall()
		tx.Ret()
		tx.Label("table")
		tx.Raw(0xAB, 0x0F, 0x05, 0xAB)
		tx.Label("fn2")
		tx.MovImm32(cpu.RAX, 2)
		tx.Syscall()
		tx.Ret()
	})
	symOffs := []uint64{syms["fn1"], syms["fn2"]}
	sites := SymbolSweep(code, 0, symOffs)
	if len(sites) != 2 {
		t.Fatalf("symbol sweep found %d sites: %+v", len(sites), sites)
	}
	if sites[0].Addr != syms["fn1"]+6 || sites[1].Addr != syms["fn2"]+6 {
		t.Fatalf("sites = %+v", sites)
	}
	// Contrast: the plain sweep misidentifies the blob.
	lin := LinearSweep(code, 0)
	mis := 0
	for _, s := range lin.Sites {
		if s.Addr != syms["fn1"]+6 && s.Addr != syms["fn2"]+6 {
			mis++
		}
	}
	if mis == 0 {
		t.Fatal("linear sweep unexpectedly clean; contrast scenario broken")
	}
}

func TestSymbolSweepNoSymbols(t *testing.T) {
	if got := SymbolSweep([]byte{0x0F, 0x05}, 0, nil); got != nil {
		t.Fatalf("sweep with no symbols = %+v", got)
	}
}

func TestSymbolSweepOutOfRangeSymbol(t *testing.T) {
	code := []byte{0x0F, 0x05, 0xC3}
	sites := SymbolSweep(code, 0x1000, []uint64{0, 999})
	if len(sites) != 1 || sites[0].Addr != 0x1000 {
		t.Fatalf("sites = %+v", sites)
	}
}
