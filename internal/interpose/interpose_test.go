package interpose_test

import (
	"testing"

	"k23/internal/asm"
	"k23/internal/cpu"
	"k23/internal/interpose"
	"k23/internal/interpose/variants"
	"k23/internal/kernel"
	"k23/internal/libc"
)

func TestMechanismString(t *testing.T) {
	cases := map[interpose.Mechanism]string{
		interpose.MechNone:    "none",
		interpose.MechRewrite: "rewrite",
		interpose.MechSUD:     "sud",
		interpose.MechPtrace:  "ptrace",
	}
	for m, want := range cases {
		if got := m.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", m, got, want)
		}
	}
}

func TestStatsTotal(t *testing.T) {
	s := interpose.Stats{Rewritten: 3, SUD: 2, Ptraced: 1}
	if s.Total() != 6 {
		t.Fatalf("Total = %d", s.Total())
	}
}

func TestNativeLauncher(t *testing.T) {
	w := interpose.NewWorld()
	b := asm.NewBuilder("/t/p")
	b.Needed(libc.Path)
	tx := b.Text()
	tx.Label("_start")
	tx.MovImm32(cpu.RDI, 5)
	tx.CallSym("exit_group")
	w.MustRegister(b.MustBuild())

	var n interpose.Native
	if n.Name() != "native" {
		t.Fatal("name")
	}
	p, err := n.Launch(w, "/t/p", []string{"p"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(p); err != nil {
		t.Fatal(err)
	}
	if p.Exit.Code != 5 {
		t.Fatalf("exit = %+v", p.Exit)
	}
	if n.Stats(p).Total() != 0 {
		t.Fatal("native interposed something")
	}
}

func TestVariantsRegistry(t *testing.T) {
	specs := variants.Specs()
	wantNames := []string{
		"native", "zpoline-default", "zpoline-ultra", "lazypoline",
		"k23-default", "k23-ultra", "k23-ultra+",
		"sud", "sud-no-interposition", "ptrace",
	}
	if len(specs) != len(wantNames) {
		t.Fatalf("got %d specs", len(specs))
	}
	for i, w := range wantNames {
		if specs[i].Name != w {
			t.Errorf("spec[%d] = %s, want %s", i, specs[i].Name, w)
		}
	}
	for _, name := range wantNames {
		spec, ok := variants.ByName(name)
		if !ok {
			t.Errorf("ByName(%s) missing", name)
			continue
		}
		l := spec.New(interpose.Config{}, "")
		if l.Name() != name {
			t.Errorf("launcher for %s reports %s", name, l.Name())
		}
	}
	if _, ok := variants.ByName("bogus"); ok {
		t.Fatal("ByName(bogus) succeeded")
	}
}

// Table 1/Table 4 consistency: the variant registry encodes the paper's
// component and feature inventory.
func TestVariantsMatchTable4(t *testing.T) {
	cases := map[string]string{
		"zpoline-default": "",
		"zpoline-ultra":   "NULL Execution Check",
		"k23-default":     "",
		"k23-ultra":       "NULL Execution Check",
		"k23-ultra+":      "NULL Execution Check & Stack Switch",
	}
	for name, features := range cases {
		spec, ok := variants.ByName(name)
		if !ok {
			t.Fatalf("missing %s", name)
		}
		if spec.ExtraFeatures != features {
			t.Errorf("%s features = %q, want %q", name, spec.ExtraFeatures, features)
		}
	}
	for _, name := range []string{"k23-default", "k23-ultra", "k23-ultra+"} {
		spec, _ := variants.ByName(name)
		if !spec.NeedsOfflineLog {
			t.Errorf("%s must need an offline log", name)
		}
	}
	cols := variants.Table3Columns()
	if len(cols) != 3 || cols[0].Name != "zpoline-ultra" || cols[1].Name != "lazypoline" || cols[2].Name != "k23-ultra+" {
		t.Fatalf("Table3Columns = %v", cols)
	}
}

// EmulateClone must give the child the requested stack, a zero RAX, and
// the resume RIP, and run the setup hook.
func TestEmulateClone(t *testing.T) {
	w := interpose.NewWorld()
	b := asm.NewBuilder("/t/sleep")
	b.Needed(libc.Path)
	tx := b.Text()
	tx.Label("_start")
	tx.MovImm32(cpu.RDI, 0)
	tx.CallSym("exit_group")
	w.MustRegister(b.MustBuild())
	p, err := w.L.Spawn("/t/sleep", []string{"s"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	main := p.MainThread()

	setup := 0
	ret := interpose.EmulateClone(w.K, main, [6]uint64{0, 0x7ffc00000000, 0, 0, 0, 0},
		0xCAFE, func(child *kernel.Thread) { setup++ })
	if _, isErr := kernel.IsErr(ret); isErr {
		t.Fatalf("clone ret = %#x", ret)
	}
	child := p.ThreadByTID(int(ret))
	if child == nil {
		t.Fatal("child not found")
	}
	if child.Core.Ctx.RIP != 0xCAFE {
		t.Fatalf("child rip = %#x", child.Core.Ctx.RIP)
	}
	if child.Core.Ctx.R[cpu.RSP] != 0x7ffc00000000 {
		t.Fatalf("child rsp = %#x", child.Core.Ctx.R[cpu.RSP])
	}
	if child.Core.Ctx.R[cpu.RAX] != 0 {
		t.Fatalf("child rax = %d", child.Core.Ctx.R[cpu.RAX])
	}
	if setup != 1 {
		t.Fatalf("setup ran %d times", setup)
	}
}

func TestAbortError(t *testing.T) {
	err := interpose.Abort("reason")
	if err == nil || err.Error() != "interposer abort: reason" {
		t.Fatalf("err = %v", err)
	}
}
