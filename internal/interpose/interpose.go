// Package interpose defines the common system call interposition API the
// five interposers of this reproduction implement: the user-facing hook
// types, launch configuration and variants (Table 4), per-process
// statistics, and the World bundle that ties a kernel, loader and image
// registry together.
package interpose

import (
	"fmt"

	"k23/internal/cpu"
	"k23/internal/image"
	"k23/internal/kernel"
	"k23/internal/libc"
	"k23/internal/loader"
)

// Mechanism says how a syscall reached the interposition code.
type Mechanism uint8

// Mechanisms.
const (
	MechNone    Mechanism = iota
	MechRewrite           // zpoline-style rewritten call *%rax
	MechSUD               // SIGSYS via Syscall User Dispatch
	MechPtrace            // ptrace syscall-stop
)

func (m Mechanism) String() string {
	switch m {
	case MechRewrite:
		return "rewrite"
	case MechSUD:
		return "sud"
	case MechPtrace:
		return "ptrace"
	default:
		return "none"
	}
}

// Call is the state of one interposed system call, handed to hooks with
// full expressiveness: registers, memory (via Thread), and the site that
// triggered it.
type Call struct {
	Kernel    *kernel.Kernel
	Thread    *kernel.Thread
	Num       uint64
	Args      [6]uint64 // modifications are applied before execution
	Site      uint64    // address of the triggering instruction
	Mechanism Mechanism
}

// Observe publishes a mechanism-attribution event for c on its kernel's
// trace stream: "syscall Num at Site was handled by Mechanism". Every
// interposer calls this where it bumps its own per-mechanism counter,
// which is how the observability layer breaks metrics down by path
// (rewrite vs. sud vs. ptrace) without importing any interposer.
// Nil-cost when no event observer is installed.
func Observe(c *Call) {
	c.Kernel.EmitInterposed(c.Thread, c.Mechanism.String(), c.Num, c.Site)
}

// Resolve publishes the outcome of a hooked call when it diverges from
// plain pass-through: the hook emulated it in-process (no kernel
// execution of the claimed number will follow) or rewrote the number to
// nr before forwarding. The audit joiner uses it to retire or update
// the attribution claim Observe opened; pass-through calls need no
// resolve — their kernel-side oracle closes the claim. Nil-cost when no
// event observer is installed.
func Resolve(c *Call, nr uint64, emulated bool) {
	c.Kernel.EmitResolve(c.Thread, c.Mechanism.String(), nr, c.Site, emulated)
}

// Phase publishes a span-layer phase mark attributed to c's mechanism
// (handler entry/exit, hook dispatch, forwarding, emulation). Like
// Observe it is nil-cost when no phase observer is installed.
func Phase(c *Call, ph kernel.Phase) {
	c.Kernel.EmitPhase(c.Thread, ph, c.Num, c.Site, c.Mechanism.String())
}

// Hook observes and optionally emulates a syscall. If emulated is true,
// ret is returned to the application and the original call is not
// executed. A nil Hook passes everything through — the "empty
// interposition function" of the paper's methodology (§6.2).
type Hook func(c *Call) (ret uint64, emulated bool)

// ResultHook observes (and may rewrite) the result after execution.
type ResultHook func(c *Call, ret uint64) uint64

// Config is the user-facing interposer configuration.
type Config struct {
	Hook       Hook
	ResultHook ResultHook

	// NullExecCheck enables the defence against unintended control
	// transfers into the page-zero trampoline (the -ultra variants,
	// Table 4): entries whose return site is not a known rewritten
	// syscall site abort the process (addresses P4a).
	NullExecCheck bool

	// StackSwitch makes the interposer run on a dedicated stack
	// (K23-ultra+ only, paper §5.3).
	StackSwitch bool
}

// Stats counts interposition activity for one process.
type Stats struct {
	// ByMechanism counts interposed syscalls per mechanism.
	Rewritten uint64
	SUD       uint64
	Ptraced   uint64

	// Sites is the number of rewritten syscall instruction sites.
	Sites int

	// Corruptions counts writes the interposer performed to locations
	// that were NOT genuine syscall instructions (the P3 damage
	// counter, maintained by the rewriting interposers).
	Corruptions int

	// NullExecAborts counts aborted unknown-origin trampoline entries.
	NullExecAborts int

	// PermClobbers counts pages whose permissions the interposer failed
	// to restore faithfully after rewriting (lazypoline's P5 flaw: it
	// assumes RX instead of saving the original).
	PermClobbers int

	// MemReservedBytes and MemResidentBytes estimate the footprint of
	// the NULL-execution check structure (bitmap vs hash set; P4b).
	MemReservedBytes uint64
	MemResidentBytes uint64
}

// Total returns the total number of interposed syscalls.
func (s *Stats) Total() uint64 { return s.Rewritten + s.SUD + s.Ptraced }

// Launcher is the common entry point the benchmarks and examples drive:
// an interposer launches a program under its supervision.
type Launcher interface {
	// Name identifies the interposer variant, e.g. "zpoline-default".
	Name() string
	// Launch starts the program interposed. The returned process is not
	// yet run; drive it with World.K.RunUntilExit or World.K.Run.
	Launch(w *World, path string, argv, env []string) (*kernel.Process, error)
	// Stats returns interposition statistics for a launched process.
	Stats(p *kernel.Process) *Stats
}

// World bundles a simulated machine: kernel, loader and image registry
// with libc preregistered.
type World struct {
	K   *kernel.Kernel
	L   *loader.Loader
	Reg *image.Registry
}

// NewWorld creates a fresh world. Kernel options (decode cache mode,
// virtual clock seed, ...) apply to the new kernel only: a World shares
// no mutable state with any other World, which is what lets the fleet
// executor run many of them on concurrent goroutines.
func NewWorld(opts ...kernel.Option) *World {
	k := kernel.New(opts...)
	reg := image.NewRegistry()
	reg.MustAdd(libc.Image())
	l := loader.New(k, reg)
	return &World{K: k, L: l, Reg: reg}
}

// Run drives the process to completion with a generous budget.
func (w *World) Run(p *kernel.Process) error {
	return w.K.RunUntilExit(p, 500_000_000)
}

// MustRegister adds an image to the registry, panicking on structural
// errors (static program definitions).
func (w *World) MustRegister(im *image.Image) { w.Reg.MustAdd(im) }

// LibcPath re-exports the libc path for convenience.
const LibcPath = libc.Path

// Native is the no-interposition baseline Launcher.
type Native struct{}

// Name implements Launcher.
func (Native) Name() string { return "native" }

// Launch implements Launcher: a plain spawn.
func (Native) Launch(w *World, path string, argv, env []string) (*kernel.Process, error) {
	return w.L.Spawn(path, argv, env)
}

// Stats implements Launcher: the native baseline interposes nothing.
func (Native) Stats(p *kernel.Process) *Stats { return &Stats{} }

var _ Launcher = Native{}

// Abort builds the error an interposer hostcall returns to terminate the
// process (the kernel converts hostcall errors into a process kill).
func Abort(why string) error { return fmt.Errorf("interposer abort: %s", why) }

// EmulateClone services a clone system call on behalf of an in-process
// interposer. Executing clone from inside a handler is wrong: the child
// inherits the handler-frame RIP but gets a fresh stack holding none of
// the handler's frame, so it would pop garbage and return to address
// zero. Every production rewriting interposer special-cases clone; so do
// ours. The child is set up to resume directly at the application's
// post-syscall address with the requested stack and RAX = 0.
//
// setupChild, if non-nil, runs on the new thread before it is first
// scheduled (K23-ultra+ allocates the child's dedicated stack there).
func EmulateClone(k *kernel.Kernel, t *kernel.Thread, args [6]uint64,
	resumeRIP uint64, setupChild func(child *kernel.Thread)) uint64 {
	ret := k.DirectSyscall(t, kernel.SysClone, args)
	if _, isErr := kernel.IsErr(ret); isErr {
		return ret
	}
	child := t.Proc.ThreadByTID(int(ret))
	if child == nil {
		return ret
	}
	ctx := &child.Core.Ctx
	ctx.RIP = resumeRIP
	if args[1] != 0 {
		ctx.R[cpu.RSP] = args[1]
	}
	ctx.R[cpu.RAX] = 0 // the child's clone return value
	if setupChild != nil {
		setupChild(child)
	}
	return ret
}
