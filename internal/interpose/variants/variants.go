// Package variants enumerates the interposer configurations compared in
// the paper's evaluation (Tables 3-6): zpoline-default/-ultra,
// lazypoline, SUD (active and no-interposition), ptrace, and the three
// K23 variants of Table 4.
package variants

import (
	"k23/internal/core"
	"k23/internal/interpose"
	"k23/internal/lazypoline"
	"k23/internal/ptracer"
	"k23/internal/sud"
	"k23/internal/zpoline"
)

// Spec describes one interposer variant.
type Spec struct {
	// Name matches the paper's labels ("zpoline-default", "k23-ultra+",
	// ...).
	Name string
	// NeedsOfflineLog is true for K23 variants: the caller must run the
	// offline phase and pass the resulting log path to New.
	NeedsOfflineLog bool
	// ExtraFeatures summarizes the Table 4 feature deltas.
	ExtraFeatures string
	// New builds the launcher. logPath is ignored unless
	// NeedsOfflineLog.
	New func(cfg interpose.Config, logPath string) interpose.Launcher
}

// Specs returns every variant, in the paper's presentation order.
func Specs() []Spec {
	return []Spec{
		{
			Name: "native",
			New: func(cfg interpose.Config, _ string) interpose.Launcher {
				return interpose.Native{}
			},
		},
		{
			Name: "zpoline-default",
			New: func(cfg interpose.Config, _ string) interpose.Launcher {
				cfg.NullExecCheck = false
				return zpoline.New(cfg)
			},
		},
		{
			Name:          "zpoline-ultra",
			ExtraFeatures: "NULL Execution Check",
			New: func(cfg interpose.Config, _ string) interpose.Launcher {
				cfg.NullExecCheck = true
				return zpoline.New(cfg)
			},
		},
		{
			Name: "lazypoline",
			New: func(cfg interpose.Config, _ string) interpose.Launcher {
				return lazypoline.New(cfg)
			},
		},
		{
			Name:            "k23-default",
			NeedsOfflineLog: true,
			New: func(cfg interpose.Config, logPath string) interpose.Launcher {
				cfg.NullExecCheck = false
				cfg.StackSwitch = false
				return core.New(cfg, logPath)
			},
		},
		{
			Name:            "k23-ultra",
			NeedsOfflineLog: true,
			ExtraFeatures:   "NULL Execution Check",
			New: func(cfg interpose.Config, logPath string) interpose.Launcher {
				cfg.NullExecCheck = true
				cfg.StackSwitch = false
				return core.New(cfg, logPath)
			},
		},
		{
			Name:            "k23-ultra+",
			NeedsOfflineLog: true,
			ExtraFeatures:   "NULL Execution Check & Stack Switch",
			New: func(cfg interpose.Config, logPath string) interpose.Launcher {
				cfg.NullExecCheck = true
				cfg.StackSwitch = true
				return core.New(cfg, logPath)
			},
		},
		{
			Name: "sud",
			New: func(cfg interpose.Config, _ string) interpose.Launcher {
				return sud.New(cfg)
			},
		},
		{
			Name: "sud-no-interposition",
			New: func(cfg interpose.Config, _ string) interpose.Launcher {
				return sud.NewPassive()
			},
		},
		{
			Name: "ptrace",
			New: func(cfg interpose.Config, _ string) interpose.Launcher {
				return ptracer.New(cfg)
			},
		},
	}
}

// ByName returns the named spec.
func ByName(name string) (Spec, bool) {
	for _, s := range Specs() {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// Table3Columns returns the three systems the pitfall matrix compares:
// zpoline (with its NULL-execution check, as published), lazypoline, and
// K23 in its full configuration.
func Table3Columns() []Spec {
	out := make([]Spec, 0, 3)
	for _, name := range []string{"zpoline-ultra", "lazypoline", "k23-ultra+"} {
		s, _ := ByName(name)
		out = append(out, s)
	}
	return out
}
