package rr

import (
	"bytes"
	"reflect"
	"testing"

	"k23/internal/apps"
	"k23/internal/kernel"
)

// pwdSpec is the smallest recordable workload.
func pwdSpec() RunSpec {
	return RunSpec{
		Name: "pwd", Path: apps.PwdPath, Argv: []string{"pwd"},
		Seed: 7, CheckpointEvery: 30_000,
	}
}

// redisSpec is a server workload long enough to cross several
// checkpoint boundaries.
func redisSpec() RunSpec {
	return RunSpec{
		Name: "redis", Path: apps.RedisPath, Argv: []string{"redis-server", "1"},
		Server: true, Requests: 10,
		Seed: 11, CheckpointEvery: 30_000,
	}
}

func record(t *testing.T, spec RunSpec) *Session {
	t.Helper()
	s, err := Record(spec, Hooks{})
	if err != nil {
		t.Fatalf("Record: %v", err)
	}
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return s
}

func TestRecordReplayEquivalent(t *testing.T) {
	for _, spec := range []RunSpec{pwdSpec(), redisSpec()} {
		t.Run(spec.Name, func(t *testing.T) {
			s := record(t, spec)
			// Servers exit with the request count mod 256; anything
			// dying by signal is a harness bug.
			if s.Rec.Final.ExitSignal != 0 {
				t.Fatalf("workload died by signal: %+v", s.Rec.Final)
			}
			r, err := Replay(s.Rec, Hooks{})
			if err != nil {
				t.Fatalf("Replay: %v", err)
			}
			if err := r.Run(); err != nil {
				t.Fatalf("replay Run: %v", err)
			}
			if i, d := r.Diverged(); d {
				t.Fatalf("replay diverged at checkpoint %d", i)
			}
			if err := s.Rec.EquivalentTo(r.Rec); err != nil {
				t.Fatalf("not equivalent: %v", err)
			}
		})
	}
}

func TestRunFromEveryCheckpoint(t *testing.T) {
	s := record(t, redisSpec())
	if s.NumCheckpoints() < 3 {
		t.Fatalf("want >= 3 checkpoints for a meaningful test, got %d", s.NumCheckpoints())
	}
	for i := 0; i < s.NumCheckpoints(); i++ {
		got, err := s.RunFromCheckpoint(i)
		if err != nil {
			t.Fatalf("RunFromCheckpoint(%d): %v", i, err)
		}
		if got != s.Rec.Final {
			t.Fatalf("checkpoint %d: final state diverged:\n got  %+v\n want %+v", i, got, s.Rec.Final)
		}
	}
}

func TestSeekSeq(t *testing.T) {
	s := record(t, redisSpec())
	if s.NumCheckpoints() < 3 {
		t.Fatalf("want >= 3 checkpoints, got %d", s.NumCheckpoints())
	}
	// Pick a target just past the second-to-last checkpoint: the seek
	// must restore that checkpoint, not replay from the beginning.
	wantFrom := s.NumCheckpoints() - 2
	target := s.Rec.Checkpoints[wantFrom].Seq + 1
	sk, err := s.SeekSeq(target)
	if err != nil {
		t.Fatalf("SeekSeq: %v", err)
	}
	if sk.Seq < target+1 {
		t.Fatalf("seek stopped at seq %d, target %d not yet emitted", sk.Seq, target)
	}
	if sk.From != wantFrom {
		t.Fatalf("seek restored checkpoint %d, want %d (nearest below target)", sk.From, wantFrom)
	}
	if sk.ReExecuted >= s.Rec.Final.Steps {
		t.Fatalf("seek re-executed %d of %d steps — no better than a full replay", sk.ReExecuted, s.Rec.Final.Steps)
	}
	// The stop must land just past the target: the event with ordinal
	// `target` exists in the recording and the world's clock must be at
	// (or barely past) that event's recorded clock.
	var want *EventRec
	for i := range s.Rec.Events {
		if s.Rec.Events[i].Seq == target {
			want = &s.Rec.Events[i]
		}
	}
	if want == nil {
		t.Fatalf("target seq %d not in recording", target)
	}
	if sk.VClock < want.Clock {
		t.Fatalf("seek VClock %d is before the target event's clock %d", sk.VClock, want.Clock)
	}
}

// TestSeekBeforeFirstCheckpoint covers the launch-time fallback: a
// target emitted during Launch (e.g. a startup-category audit escape)
// has no checkpoint before it, so the seek replays the launch alone in
// a fresh world and reports From = -1 — still far cheaper than a full
// re-execution.
func TestSeekBeforeFirstCheckpoint(t *testing.T) {
	s := record(t, redisSpec())
	first := s.Rec.Checkpoints[0].Seq
	if first == 0 {
		t.Skip("first checkpoint at seq 0; nothing precedes it")
	}
	sk, err := s.SeekSeq(first - 1)
	if err != nil {
		t.Fatalf("SeekSeq(%d): %v", first-1, err)
	}
	if sk.From != -1 {
		t.Fatalf("seek From = %d, want -1 (replay from tick 0)", sk.From)
	}
	if sk.Seq < first {
		t.Fatalf("seek stopped at seq %d before target %d", sk.Seq, first-1)
	}
	if sk.ReExecuted >= s.Rec.Final.Steps {
		t.Fatalf("launch-time seek re-executed %d of %d steps — no better than a full replay",
			sk.ReExecuted, s.Rec.Final.Steps)
	}
	// The launch replay must not have disturbed the primary session: a
	// later checkpoint seek still works and matches the recording.
	got, err := s.RunFromCheckpoint(0)
	if err != nil {
		t.Fatalf("RunFromCheckpoint(0) after launch seek: %v", err)
	}
	if got != s.Rec.Final {
		t.Fatalf("session state damaged by launch-time seek:\n got  %+v\n want %+v", got, s.Rec.Final)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	s := record(t, redisSpec())
	var buf bytes.Buffer
	if err := s.Rec.WriteJSONL(&buf); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatalf("ReadJSONL: %v", err)
	}
	if !reflect.DeepEqual(s.Rec, got) {
		t.Fatalf("recording did not round-trip through JSONL")
	}
}

func TestJSONLRejectsCorruption(t *testing.T) {
	s := record(t, pwdSpec())
	var buf bytes.Buffer
	if err := s.Rec.WriteJSONL(&buf); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	// Truncation loses the final line.
	lines := bytes.Split(bytes.TrimRight(buf.Bytes(), "\n"), []byte("\n"))
	trunc := bytes.Join(lines[:len(lines)-1], []byte("\n"))
	if _, err := ReadJSONL(bytes.NewReader(trunc)); err == nil {
		t.Fatalf("truncated recording accepted")
	}
	// A version bump is rejected.
	bumped := bytes.Replace(buf.Bytes(), []byte(`"version":1`), []byte(`"version":99`), 1)
	if _, err := ReadJSONL(bytes.NewReader(bumped)); err == nil {
		t.Fatalf("future-version recording accepted")
	}
}

// TestValidateRejectsEditedEvent guards the tamper check: flipping one
// bit in one recorded event's return value must fail validation (the
// stream no longer re-hashes to the recorded final event hash), even
// though every count and checkpoint line is untouched.
func TestValidateRejectsEditedEvent(t *testing.T) {
	s := record(t, pwdSpec())
	tampered := *s.Rec
	tampered.Events = append([]EventRec(nil), s.Rec.Events...)
	tampered.Events[len(tampered.Events)/2].Ret ^= 1
	if err := tampered.Validate(); err == nil {
		t.Fatalf("recording with an edited event line validated clean")
	}
	if err := s.Rec.Validate(); err != nil {
		t.Fatalf("untampered recording failed validation: %v", err)
	}
}

// TestRecordedFrontierSufficient is the frontier under-capture guard:
// replay a recording whose SEED has been destroyed. If the replay
// engine (or anything below it) re-derived state from the seed instead
// of the recorded frontier values, this run would diverge.
func TestRecordedFrontierSufficient(t *testing.T) {
	spec := redisSpec()
	spec.Chaos = &kernel.ChaosProfile{BlockEINTR: 48, ShortRead: 96, ShortWrite: 96, Transient: 48}
	spec.ChaosSeed = 5
	s := record(t, spec)
	if s.Rec.Final.ChaosInjected == 0 {
		t.Fatalf("chaos profile armed but nothing injected; frontier test is vacuous")
	}

	// Destroy the seed in the recording: replay must not notice.
	mangled := *s.Rec
	mangled.Spec.Seed = 0xdeadbeef
	mangled.Spec.ChaosSeed = 0

	r, err := Replay(&mangled, Hooks{})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if err := r.Run(); err != nil {
		t.Fatalf("replay Run: %v", err)
	}
	if i, d := r.Diverged(); d {
		t.Fatalf("seed-free replay diverged at checkpoint %d: the frontier under-captures", i)
	}
	if s.Rec.Final != r.Rec.Final {
		t.Fatalf("seed-free replay final state diverged:\n got  %+v\n want %+v", r.Rec.Final, s.Rec.Final)
	}
}
