package rr

import "testing"

// TestKernelCheckpointRoundTrip is the kernel leg of the checkpoint
// property: Checkpoint → keep running (mutating cores, memory, fds,
// signals, VFS) → Restore must reproduce the exact pre-checkpoint
// kernel StateHash, and the same snapshot must survive repeated
// restores.
func TestKernelCheckpointRoundTrip(t *testing.T) {
	// The server workload retires tens of thousands of instructions after
	// launch (it polls for connections), so a checkpoint at +5k insts has
	// plenty of execution on both sides.
	s, err := Record(redisSpec(), Hooks{})
	if err != nil {
		t.Fatalf("Record: %v", err)
	}
	k := s.W.K
	k.Run(5_000)

	h0 := k.StateHash()
	snap, err := k.Checkpoint(nil)
	if err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if got := k.StateHash(); got != h0 {
		t.Fatalf("taking a checkpoint perturbed the kernel: hash %#x, want %#x", got, h0)
	}

	k.Run(20_000)
	if k.StateHash() == h0 {
		t.Fatalf("running 20k insts did not change the state hash; test is vacuous")
	}
	k.Restore(snap)
	if got := k.StateHash(); got != h0 {
		t.Fatalf("restore: hash %#x, want %#x", got, h0)
	}

	k.Run(20_000)
	k.Restore(snap)
	if got := k.StateHash(); got != h0 {
		t.Fatalf("second restore from same snapshot: hash %#x, want %#x", got, h0)
	}
}

// FuzzCheckpointRestore drives the round-trip property over random
// checkpoint placement: a checkpoint taken after an arbitrary number of
// retired instructions, followed by an arbitrary amount of further
// execution, must restore to the exact captured state — and a delta
// checkpoint chained off it must too.
func FuzzCheckpointRestore(f *testing.F) {
	f.Add(uint64(3), uint16(1), uint16(4))
	f.Add(uint64(9), uint16(17), uint16(2))
	f.Add(uint64(1), uint16(0), uint16(63))
	f.Fuzz(func(t *testing.T, seed uint64, preRaw, midRaw uint16) {
		spec := redisSpec()
		spec.Seed = seed%64 + 1
		s, err := Record(spec, Hooks{})
		if err != nil {
			t.Fatalf("Record: %v", err)
		}
		k := s.W.K
		pre := uint64(preRaw) * 4
		mid := uint64(midRaw)*4 + 20
		if pre > 0 {
			k.Run(pre)
		}

		h0 := k.StateHash()
		snap, err := k.Checkpoint(nil)
		if err != nil {
			t.Fatalf("Checkpoint at +%d: %v", pre, err)
		}
		k.Run(mid)
		k.Restore(snap)
		if got := k.StateHash(); got != h0 {
			t.Fatalf("ckpt at +%d, run %d more: restore hash %#x, want %#x", pre, mid, got, h0)
		}

		// A delta checkpoint chained off the first must restore too.
		k.Run(mid)
		h1 := k.StateHash()
		snap2, err := k.Checkpoint(snap)
		if err != nil {
			t.Fatalf("delta Checkpoint: %v", err)
		}
		k.Run(1_000)
		k.Restore(snap2)
		if got := k.StateHash(); got != h1 {
			t.Fatalf("delta restore: hash %#x, want %#x", got, h1)
		}
	})
}
