package rr

import "k23/internal/kernel"

// Reverse (time-travel) queries over a recording's event stream. They
// are pure index scans — no re-execution — and return pointers into
// Recording.Events, so the caller can feed the found event's Seq to
// Session.SeekSeq to materialize the world state at that moment.

// LastEventBefore returns the last event with Seq < beforeSeq matching
// pred, or nil. It is the generic reverse query the named ones build on.
func (r *Recording) LastEventBefore(beforeSeq uint64, pred func(*EventRec) bool) *EventRec {
	for i := len(r.Events) - 1; i >= 0; i-- {
		e := &r.Events[i]
		if e.Seq >= beforeSeq {
			continue
		}
		if pred(e) {
			return e
		}
	}
	return nil
}

// writeFamily reports whether nr writes through a file descriptor in
// arg 0 (the descriptor-mutation set the fd reverse query covers).
func writeFamily(nr uint64) bool {
	switch nr {
	case kernel.SysWrite, kernel.SysSendto:
		return true
	}
	return false
}

// LastWriteToFD returns the last write-family syscall entry targeting
// descriptor fdNum before beforeSeq — "what last wrote fd N before the
// escape at seq S".
func (r *Recording) LastWriteToFD(fdNum int, beforeSeq uint64) *EventRec {
	return r.LastEventBefore(beforeSeq, func(e *EventRec) bool {
		return e.Kind == kernel.EvEnter.String() && writeFamily(e.Num) &&
			len(e.Args) > 0 && e.Args[0] == uint64(fdNum)
	})
}

// LastTrapByMech returns the last interposer trap attributed to
// mechanism mech (an EvInterposed event, whose Detail names the
// mechanism) before virtual tick beforeTick.
func (r *Recording) LastTrapByMech(mech string, beforeTick uint64) *EventRec {
	interposed := kernel.EvInterposed.String()
	for i := len(r.Events) - 1; i >= 0; i-- {
		e := &r.Events[i]
		if e.Clock >= beforeTick {
			continue
		}
		if e.Kind == interposed && e.Detail == mech {
			return e
		}
	}
	return nil
}

// LastSyscallBefore returns the last entry of syscall nr before
// beforeSeq, regardless of arguments.
func (r *Recording) LastSyscallBefore(nr uint64, beforeSeq uint64) *EventRec {
	return r.LastEventBefore(beforeSeq, func(e *EventRec) bool {
		return e.Kind == kernel.EvEnter.String() && e.Num == nr
	})
}
