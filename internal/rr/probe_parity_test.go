package rr

import (
	"bytes"
	"fmt"
	"testing"

	"k23/internal/apps"
	"k23/internal/interpose"
	"k23/internal/kernel"
	"k23/internal/obsv"
	"k23/internal/probe"
)

// probeParityProgram exercises both side-streams (events and phase
// marks), all aggregation functions, and the emit ring.
const probeParityProgram = `syscall:*:exit { count() by (name); hist(cycles) by (mech) }
phase:*:kernel { sum(cycles) }
chaos:inject { emit() }
syscall:*:exit /errno != 0/ { count() by (name, errno) }`

// probeAttach returns a BeforeLaunch hook installing a probe observer,
// plus a getter for the resulting canonical probe JSONL bytes.
func probeAttach(t *testing.T, mech string) (func(w *interpose.World), func(t *testing.T) []byte) {
	compiled, err := obsv.CompileProbes(probeParityProgram)
	if err != nil {
		t.Fatalf("CompileProbes: %v", err)
	}
	var obs *obsv.Observer
	attach := func(w *interpose.World) {
		obs = obsv.New(obsv.Options{Probes: compiled, ProbeMech: mech})
		obs.Install(w.K)
	}
	dump := func(t *testing.T) []byte {
		t.Helper()
		if obs == nil {
			t.Fatal("observer was never attached")
		}
		var buf bytes.Buffer
		if err := obs.Snapshot().Probes.WriteJSONL(&buf); err != nil {
			t.Fatalf("WriteJSONL: %v", err)
		}
		return buf.Bytes()
	}
	return attach, dump
}

// TestReplayDerivedProbeParity is the retroactive-probing contract: the
// aggregations a probe program produces when replaying an unprobed
// recording must be byte-identical to those of a live-probed run of the
// same workload. Probe engines ride the side-stream hooks and charge no
// guest cycles, so probing perturbs neither the recording nor the
// replay — proven here across three apps, each with two distinct chaos
// seeds, plus a chaos-free baseline.
func TestReplayDerivedProbeParity(t *testing.T) {
	chaos := kernel.DefaultChaosProfile()
	base := []RunSpec{
		{Name: "pwd", Path: apps.PwdPath, Argv: []string{"pwd"}, Seed: 7, CheckpointEvery: 30_000},
		{Name: "ls", Path: apps.LsPath, Argv: []string{"ls", "/data"}, Seed: 10, CheckpointEvery: 30_000},
		{Name: "cat", Path: apps.CatPath, Argv: []string{"cat", "/data/notes.txt"}, Seed: 11, CheckpointEvery: 30_000},
	}
	var specs []RunSpec
	for _, b := range base {
		specs = append(specs, b)
		for _, cs := range []uint64{1, 2} {
			s := b
			s.Name = fmt.Sprintf("%s-chaos%d", b.Name, cs)
			s.Chaos = &chaos
			s.ChaosSeed = cs
			specs = append(specs, s)
		}
	}
	for _, spec := range specs {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			// Live-probed recording.
			liveAttach, liveDump := probeAttach(t, spec.Mechanism)
			live, err := Record(spec, Hooks{BeforeLaunch: liveAttach})
			if err != nil {
				t.Fatalf("Record (probed): %v", err)
			}
			if err := live.Run(); err != nil {
				t.Fatalf("probed Run: %v", err)
			}
			liveBytes := liveDump(t)
			if len(liveBytes) == 0 {
				t.Fatal("live probe output is empty")
			}

			// Unprobed recording of the same workload: the probe engine
			// must not have perturbed what got recorded.
			plain := record(t, spec)
			if err := plain.Rec.EquivalentTo(live.Rec); err != nil {
				t.Fatalf("probe engine perturbed the recording: %v", err)
			}

			// Retroactive aggregation from the unprobed recording. The
			// mech context comes from the recording's spec, mirroring what
			// `k23 -replay -probe` does.
			retroAttach, retroDump := probeAttach(t, plain.Rec.Spec.Mechanism)
			if _, err := Retrace(plain.Rec, retroAttach); err != nil {
				t.Fatalf("Retrace: %v", err)
			}
			retroBytes := retroDump(t)

			if !bytes.Equal(liveBytes, retroBytes) {
				t.Errorf("replay-derived probe output differs from live output (%d vs %d bytes)",
					len(liveBytes), len(retroBytes))
			}
			// The derived output stands on its own: it validates.
			n, err := probe.ValidateJSONL(bytes.NewReader(retroBytes))
			if err != nil {
				t.Fatalf("derived probe output invalid: %v", err)
			}
			if n == 0 {
				t.Error("derived probe output has no records")
			}
		})
	}
}
