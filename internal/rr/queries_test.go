package rr

import (
	"testing"

	"k23/internal/kernel"
)

// handBuilt is a synthetic event stream with known query answers.
func handBuilt() *Recording {
	return &Recording{
		Version: FormatVersion,
		Events: []EventRec{
			{Seq: 1, Kind: "enter", Num: kernel.SysWrite, Args: []uint64{1, 0x100, 5}, Clock: 100},
			{Seq: 2, Kind: "interposed", Num: kernel.SysWrite, Detail: "rewritten", Clock: 110},
			{Seq: 3, Kind: "enter", Num: kernel.SysWrite, Args: []uint64{2, 0x200, 7}, Clock: 120},
			{Seq: 4, Kind: "enter", Num: kernel.SysSendto, Args: []uint64{1, 0x300, 9}, Clock: 130},
			{Seq: 5, Kind: "interposed", Num: kernel.SysRead, Detail: "sud", Clock: 140},
			{Seq: 6, Kind: "enter", Num: kernel.SysRead, Args: []uint64{1, 0x400, 3}, Clock: 150},
			{Seq: 7, Kind: "enter", Num: kernel.SysWrite, Args: []uint64{1, 0x500, 2}, Clock: 160},
		},
	}
}

func TestLastWriteToFD(t *testing.T) {
	r := handBuilt()
	cases := []struct {
		fd      int
		before  uint64
		wantSeq uint64 // 0 = nil
	}{
		{1, 100, 7}, // everything before seq 100: last write-family on fd 1 is seq 7
		{1, 7, 4},   // before seq 7: the sendto at seq 4 (reads don't count)
		{1, 4, 1},   // before seq 4: the write at seq 1
		{1, 1, 0},   // nothing before seq 1
		{2, 100, 3}, // fd 2: only the write at seq 3
		{3, 100, 0}, // fd never written
	}
	for _, c := range cases {
		got := r.LastWriteToFD(c.fd, c.before)
		switch {
		case c.wantSeq == 0 && got != nil:
			t.Errorf("LastWriteToFD(%d, %d) = seq %d, want nil", c.fd, c.before, got.Seq)
		case c.wantSeq != 0 && got == nil:
			t.Errorf("LastWriteToFD(%d, %d) = nil, want seq %d", c.fd, c.before, c.wantSeq)
		case c.wantSeq != 0 && got.Seq != c.wantSeq:
			t.Errorf("LastWriteToFD(%d, %d) = seq %d, want %d", c.fd, c.before, got.Seq, c.wantSeq)
		}
	}
}

func TestLastTrapByMech(t *testing.T) {
	r := handBuilt()
	if got := r.LastTrapByMech("sud", 200); got == nil || got.Seq != 5 {
		t.Errorf("LastTrapByMech(sud, 200) = %+v, want seq 5", got)
	}
	if got := r.LastTrapByMech("sud", 140); got != nil {
		// Clock 140 is not before tick 140.
		t.Errorf("LastTrapByMech(sud, 140) = seq %d, want nil", got.Seq)
	}
	if got := r.LastTrapByMech("rewritten", 200); got == nil || got.Seq != 2 {
		t.Errorf("LastTrapByMech(rewritten, 200) = %+v, want seq 2", got)
	}
	if got := r.LastTrapByMech("ptrace", 200); got != nil {
		t.Errorf("LastTrapByMech(ptrace, 200) = seq %d, want nil", got.Seq)
	}
}

func TestLastSyscallBefore(t *testing.T) {
	r := handBuilt()
	if got := r.LastSyscallBefore(kernel.SysRead, 100); got == nil || got.Seq != 6 {
		t.Errorf("LastSyscallBefore(read, 100) = %+v, want seq 6", got)
	}
	if got := r.LastSyscallBefore(kernel.SysMmap, 100); got != nil {
		t.Errorf("LastSyscallBefore(mmap, 100) = seq %d, want nil", got.Seq)
	}
}
