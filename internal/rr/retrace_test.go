package rr

import (
	"bytes"
	"fmt"
	"testing"

	"k23/internal/apps"
	"k23/internal/interpose"
	"k23/internal/kernel"
	"k23/internal/obsv"
	"k23/internal/span"
)

// spanAttach returns a BeforeLaunch hook installing a span-building
// observer, plus a getter for the resulting canonical span JSONL bytes.
func spanAttach() (func(w *interpose.World), func(t *testing.T) []byte) {
	var obs *obsv.Observer
	attach := func(w *interpose.World) {
		obs = obsv.New(obsv.Options{Spans: true})
		obs.Install(w.K)
	}
	dump := func(t *testing.T) []byte {
		t.Helper()
		if obs == nil {
			t.Fatal("observer was never attached")
		}
		var buf bytes.Buffer
		if err := span.WriteJSONL(&buf, obs.Snapshot().Spans...); err != nil {
			t.Fatalf("WriteJSONL: %v", err)
		}
		return buf.Bytes()
	}
	return attach, dump
}

// TestReplayDerivedTraceParity is the retroactive-tracing contract: a
// span trace derived from replaying an untraced recording must be
// byte-identical to the trace of a live-traced run of the same workload.
// Phase marks flow on a side-stream (own ordinal counter, never through
// the recorded event sequence), so span building cannot perturb either
// the recording or the replay — which this test proves across three
// apps, each with two distinct chaos seeds, plus a chaos-free baseline.
func TestReplayDerivedTraceParity(t *testing.T) {
	chaos := kernel.DefaultChaosProfile()
	base := []RunSpec{
		{Name: "pwd", Path: apps.PwdPath, Argv: []string{"pwd"}, Seed: 7, CheckpointEvery: 30_000},
		{Name: "ls", Path: apps.LsPath, Argv: []string{"ls", "/data"}, Seed: 10, CheckpointEvery: 30_000},
		{Name: "cat", Path: apps.CatPath, Argv: []string{"cat", "/data/notes.txt"}, Seed: 11, CheckpointEvery: 30_000},
	}
	var specs []RunSpec
	for _, b := range base {
		specs = append(specs, b)
		for _, cs := range []uint64{1, 2} {
			s := b
			s.Name = fmt.Sprintf("%s-chaos%d", b.Name, cs)
			s.Chaos = &chaos
			s.ChaosSeed = cs
			specs = append(specs, s)
		}
	}
	for _, spec := range specs {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			// Live-traced recording.
			liveAttach, liveDump := spanAttach()
			live, err := Record(spec, Hooks{BeforeLaunch: liveAttach})
			if err != nil {
				t.Fatalf("Record (traced): %v", err)
			}
			if err := live.Run(); err != nil {
				t.Fatalf("traced Run: %v", err)
			}
			liveBytes := liveDump(t)
			if len(liveBytes) == 0 {
				t.Fatal("live trace is empty")
			}

			// Untraced recording of the same workload: span building
			// must not have perturbed what got recorded.
			plain := record(t, spec)
			if err := plain.Rec.EquivalentTo(live.Rec); err != nil {
				t.Fatalf("span observer perturbed the recording: %v", err)
			}

			// Retroactive trace from the untraced recording.
			retroAttach, retroDump := spanAttach()
			if _, err := Retrace(plain.Rec, retroAttach); err != nil {
				t.Fatalf("Retrace: %v", err)
			}
			retroBytes := retroDump(t)

			if !bytes.Equal(liveBytes, retroBytes) {
				t.Errorf("replay-derived trace differs from live trace (%d vs %d bytes)",
					len(liveBytes), len(retroBytes))
			}
			// The derived trace stands on its own: it validates.
			rep, err := span.ValidateJSONL(bytes.NewReader(retroBytes))
			if err != nil || !rep.Ok() {
				t.Fatalf("derived trace invalid: %v %v", err, rep.Problems)
			}
			if spec.Chaos != nil && rep.Spans == 0 {
				t.Error("chaos run produced no spans")
			}
		})
	}
}
