// Package rr is the deterministic record/replay engine: it records the
// minimal nondeterminism frontier of one simulated-machine run (initial
// virtual clock, injected workload payload, chaos-injector decision
// stream, run configuration), takes periodic whole-world checkpoints
// through kernel.Checkpoint, and replays the run — from the beginning or
// from any checkpoint — bit-identically. On top of the recording it
// offers time-travel: seeking to an arbitrary event ordinal by restoring
// the nearest checkpoint and re-executing forward, reverse queries over
// the recorded event stream ("last write to fd N before seq S"), and a
// divergence bisector that localizes the first mismatch between two
// recordings to a checkpoint window and an event ordinal.
//
// The engine's correctness contract is frontier sufficiency: a replay
// consumes only what the recording carries — it re-derives nothing from
// the original seed — so if any source of nondeterminism escaped the
// frontier, replay hashes diverge and the rrtest battery fails.
package rr

import "k23/internal/kernel"

// Canonical drive-loop constants. Replay equivalence requires the
// re-execution to issue the exact Run-slice sequence the recording did
// (a slice boundary restarts the scheduler's round-robin sweep, so
// slicing is observable for multithreaded guests): every rr execution
// path — record, replay, replay-from-checkpoint, seek — uses these.
const (
	// PollSlice is the Run slice while waiting for a server to listen.
	PollSlice = 10_000
	// PollTries bounds the listen-poll loop.
	PollTries = 5_000
	// Slice is the main-loop Run slice. Checkpoints land only on slice
	// boundaries, so the slice also bounds checkpoint placement
	// granularity; it is deliberately finer than the fleet executor's
	// cancellation slice (the scheduler's own per-round bookkeeping
	// dwarfs the per-slice overhead at this size).
	Slice = 20_000
)

// DefaultMaxInsts is the per-run instruction budget when
// RunSpec.MaxInsts is zero.
const DefaultMaxInsts = 500_000_000

// DefaultCheckpointEvery is the checkpoint interval in virtual-clock
// ticks when RunSpec.CheckpointEvery is zero.
const DefaultCheckpointEvery = 250_000

// RunSpec is the run configuration half of the nondeterminism frontier:
// everything needed to rebuild the world, plus the seed the derived
// quantities (initial clock, payload, chaos stream) were drawn from.
// Replays do not consult the seed — they use the derived values stored
// in the Recording — which is what the recorded-frontier regression
// test exploits to prove the frontier is sufficient.
type RunSpec struct {
	// Name labels the run in reports.
	Name string `json:"name"`
	// Mechanism is the interposer variant (variants.ByName); empty means
	// native execution.
	Mechanism string `json:"mechanism,omitempty"`
	// Path and Argv name the program to boot.
	Path string   `json:"path"`
	Argv []string `json:"argv"`
	Env  []string `json:"env,omitempty"`
	// Server marks a workload driven by an injected client connection.
	Server bool `json:"server,omitempty"`
	// Requests is the number of requests per injected connection.
	Requests int `json:"requests,omitempty"`
	// Seed individualizes the machine (fleet-compatible derivation).
	Seed uint64 `json:"seed"`
	// Chaos, when non-nil, arms deterministic fault injection.
	Chaos *kernel.ChaosProfile `json:"chaos,omitempty"`
	// ChaosSeed salts the chaos seed derivation (Seed ^ ChaosSeed).
	ChaosSeed uint64 `json:"chaos_seed,omitempty"`
	// MaxInsts bounds the run; 0 means DefaultMaxInsts.
	MaxInsts uint64 `json:"max_insts,omitempty"`
	// CheckpointEvery is the checkpoint interval in virtual-clock ticks;
	// 0 means DefaultCheckpointEvery, negative intervals are invalid.
	CheckpointEvery uint64 `json:"checkpoint_every,omitempty"`
}

func (s RunSpec) maxInsts() uint64 {
	if s.MaxInsts == 0 {
		return DefaultMaxInsts
	}
	return s.MaxInsts
}

func (s RunSpec) checkpointEvery() uint64 {
	if s.CheckpointEvery == 0 {
		return DefaultCheckpointEvery
	}
	return s.CheckpointEvery
}

// splitmix64 is the seed-expansion PRNG, matching the fleet executor's
// derivation so a recorded machine equals its fleet twin.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// seedPayload derives the deterministic request payload from the seed
// (fleet-compatible).
func seedPayload(seed uint64, n int) []byte {
	b := make([]byte, n)
	s := splitmix64(seed)
	for i := range b {
		s = splitmix64(s)
		b[i] = 'A' + byte(s%26)
	}
	return b
}

// deriveVClock0 is the fleet executor's initial-clock derivation.
func deriveVClock0(seed uint64) uint64 { return splitmix64(seed) % (1 << 40) }

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// fnvState is a resumable FNV-1a accumulator: its value can be saved at
// a checkpoint and restored before re-execution, so a replay from
// checkpoint i finishes with the same final hash as the full run.
type fnvState struct{ h uint64 }

func newFNV() fnvState { return fnvState{h: fnvOffset} }

func (f *fnvState) writeU64(vs ...uint64) {
	h := f.h
	for _, v := range vs {
		for i := 0; i < 8; i++ {
			h ^= uint64(byte(v >> (8 * i)))
			h *= fnvPrime
		}
	}
	f.h = h
}

func (f *fnvState) writeString(s string) {
	h := f.h
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	f.h = h
}

// digest is a one-shot FNV-1a over a byte string.
func digest(b []byte) uint64 {
	h := uint64(fnvOffset)
	for _, c := range b {
		h ^= uint64(c)
		h *= fnvPrime
	}
	return h
}
