package rr

import "fmt"

// Divergence localizes the first difference between two recordings of
// nominally the same run.
type Divergence struct {
	// LastGood is the last checkpoint index where both recordings agree
	// (position and hashes), or -1 if they differ from checkpoint 0.
	LastGood int
	// FirstBad is the first disagreeing checkpoint index, or -1 when the
	// divergence lies after the last common checkpoint (final-state-only
	// divergence).
	FirstBad int
	// Seq is the ordinal of the first differing event, or the ordinal
	// where one stream ends, localizing the divergence inside the
	// checkpoint window.
	Seq uint64
	// Detail describes what differs at Seq.
	Detail string
}

func (d *Divergence) String() string {
	return fmt.Sprintf("divergence after checkpoint %d (first bad %d) at event seq %d: %s",
		d.LastGood, d.FirstBad, d.Seq, d.Detail)
}

func metaEq(a, b CkptMeta) bool { return a == b }

// Bisect localizes where recording b first diverges from recording a.
// It binary-searches the shared checkpoint trajectory for the last
// agreeing checkpoint — hash avalanche makes agreement monotone: once
// the streams diverge every later checkpoint hash differs — then scans
// the events of the guilty window for the first differing record.
// Returns nil when the recordings are replay-equivalent.
func Bisect(a, b *Recording) *Divergence {
	n := len(a.Checkpoints)
	if len(b.Checkpoints) < n {
		n = len(b.Checkpoints)
	}
	// Binary search: find the largest index in [0,n) where the metas
	// still agree. Invariant: agreement is a prefix property.
	lastGood := -1
	lo, hi := 0, n-1
	for lo <= hi {
		mid := (lo + hi) / 2
		if metaEq(a.Checkpoints[mid], b.Checkpoints[mid]) {
			lastGood = mid
			lo = mid + 1
		} else {
			hi = mid - 1
		}
	}
	firstBad := -1
	if lastGood+1 < n {
		firstBad = lastGood + 1
	} else if len(a.Checkpoints) != len(b.Checkpoints) {
		firstBad = n
	}
	if firstBad < 0 && a.Final == b.Final {
		return nil // replay-equivalent
	}

	// Scan the guilty window for the first differing event. The window
	// starts at the last good checkpoint's event count (events before it
	// are proven identical by the matching event hash).
	from := 0
	if lastGood >= 0 {
		from = a.Checkpoints[lastGood].Events
	}
	for i := from; ; i++ {
		switch {
		case i >= len(a.Events) && i >= len(b.Events):
			// Streams equal to their common end; the divergence is in
			// non-event state (trace hash, VFS, exit).
			var seq uint64
			if len(a.Events) > 0 {
				seq = a.Events[len(a.Events)-1].Seq
			}
			return &Divergence{LastGood: lastGood, FirstBad: firstBad, Seq: seq,
				Detail: "event streams agree; divergence in non-event state (trace/VFS/exit)"}
		case i >= len(a.Events):
			return &Divergence{LastGood: lastGood, FirstBad: firstBad, Seq: b.Events[i].Seq,
				Detail: fmt.Sprintf("first stream ends; second continues with %s num=%d", b.Events[i].Kind, b.Events[i].Num)}
		case i >= len(b.Events):
			return &Divergence{LastGood: lastGood, FirstBad: firstBad, Seq: a.Events[i].Seq,
				Detail: fmt.Sprintf("second stream ends; first continues with %s num=%d", a.Events[i].Kind, a.Events[i].Num)}
		case !eventEq(&a.Events[i], &b.Events[i]):
			return &Divergence{LastGood: lastGood, FirstBad: firstBad, Seq: a.Events[i].Seq,
				Detail: fmt.Sprintf("event %d differs: %s num=%d ret=%#x vs %s num=%d ret=%#x",
					i, a.Events[i].Kind, a.Events[i].Num, a.Events[i].Ret,
					b.Events[i].Kind, b.Events[i].Num, b.Events[i].Ret)}
		}
	}
}

func eventEq(a, b *EventRec) bool {
	if a.Seq != b.Seq || a.PID != b.PID || a.TID != b.TID || a.Kind != b.Kind ||
		a.Num != b.Num || a.Site != b.Site || a.Ret != b.Ret || a.Clock != b.Clock ||
		a.Detail != b.Detail || len(a.Args) != len(b.Args) {
		return false
	}
	for i := range a.Args {
		if a.Args[i] != b.Args[i] {
			return false
		}
	}
	return true
}
