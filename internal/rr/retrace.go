package rr

import (
	"fmt"

	"k23/internal/interpose"
)

// Retrace replays rec with extra observers attached at the production
// boundary (the same BeforeLaunch point a live run uses) and verifies
// the re-execution stayed bit-identical to the recording.
//
// This is the retroactive-tracing contract: observability that was OFF
// during the original run can be derived after the fact by replaying
// the recording with it ON. It is sound because every collector rides
// a side-stream — phase marks carry their own ordinal (kernel.PhaseSeq)
// and never touch the event sequence the recording hashes, and the
// event hook chains without consuming — so attaching one cannot perturb
// the recorded schedule. Retrace enforces that by failing loudly if the
// traced replay diverges from the recording at any checkpoint: a
// divergence here means an observer leaked into execution, not that the
// recording is bad.
//
// The returned session has finished its run; read the derived artifacts
// off whatever attach installed (e.g. an obsv.Observer's Snapshot).
func Retrace(rec *Recording, attach func(w *interpose.World)) (*Session, error) {
	s, err := Replay(rec, Hooks{BeforeLaunch: attach})
	if err != nil {
		return nil, err
	}
	if err := s.Run(); err != nil {
		return nil, err
	}
	if i, diverged := s.Diverged(); diverged {
		return nil, fmt.Errorf("rr: retrace diverged at checkpoint %d of %d — the attached observer perturbed the replay",
			i, s.NumCheckpoints())
	}
	return s, nil
}
