package rr

import (
	"fmt"
	"strings"

	"k23/internal/apps"
	"k23/internal/core"
	"k23/internal/cpu"
	"k23/internal/cpu/difftest"
	"k23/internal/interpose"
	"k23/internal/interpose/variants"
	"k23/internal/kernel"
)

// Hooks customizes session construction.
type Hooks struct {
	// BeforeLaunch runs after the world is prepared and any offline phase
	// has finished, immediately before production interposition starts —
	// the correct attach point for observers (audit, flight recorder)
	// that must cover exactly the production run.
	BeforeLaunch func(w *interpose.World)
}

// liveCkpt pairs a checkpoint's metadata with its in-memory kernel
// snapshot and the resumable recorder state (hash accumulators,
// counters) needed to continue the recording from it.
type liveCkpt struct {
	meta     CkptMeta
	snap     *kernel.Snapshot
	traceH   uint64
	eventH   uint64
	steps    uint64
	syscalls uint64
	evCount  int
	injected bool
}

// Session drives one machine under the recorder. A session records (or
// replays) a run to completion, holding live snapshots at every
// checkpoint; afterwards it can re-execute from any checkpoint
// (RunFromCheckpoint) or seek to an event ordinal (SeekSeq) by
// restoring the nearest snapshot and running forward.
type Session struct {
	Spec RunSpec
	W    *interpose.World
	P    *kernel.Process
	// Rec is this session's recording, complete after Run.
	Rec *Recording

	launcher interpose.Launcher
	replayOf *Recording
	ckpts    []*liveCkpt
	th, eh   fnvState
	steps    uint64
	syscalls uint64
	events   []EventRec
	lastCkpt uint64 // VClock at the last checkpoint
	injected bool
	// retracing suppresses checkpoint-taking and event/divergence
	// bookkeeping while re-executing a stretch the session already
	// recorded (RunFromCheckpoint, SeekSeq).
	retracing bool
	// divergence is the first checkpoint index whose replayed metadata
	// mismatched the recording being replayed; -1 means none (so far).
	divergence int
	// finalDiverged marks a replay whose final state mismatched even
	// though every checkpoint matched (divergence after the last one).
	finalDiverged bool
	finished      bool
}

// Record builds a session that records spec from scratch: the frontier
// values (initial clock, payload, chaos stream) are derived from
// spec.Seed and captured into the recording as they are consumed.
func Record(spec RunSpec, hooks Hooks) (*Session, error) {
	rec := &Recording{Version: FormatVersion, Spec: spec, VClock0: deriveVClock0(spec.Seed)}
	if spec.Server {
		p := seedPayload(spec.Seed, apps.RequestSize)
		rec.Payload = string(p)
		rec.PayloadDigest = digest(p)
	}
	kopts := []kernel.Option{kernel.WithVClock(rec.VClock0)}
	if spec.Chaos != nil {
		kopts = append(kopts, kernel.WithChaos(splitmix64(spec.Seed^spec.ChaosSeed), *spec.Chaos))
	}
	s := &Session{Spec: spec, Rec: rec, divergence: -1}
	if err := s.boot(kopts, hooks); err != nil {
		return nil, err
	}
	return s, nil
}

// Replay builds a session that re-executes a recording. It consumes
// only the recorded frontier — initial clock, payload bytes, chaos
// decision script — never re-deriving anything from the seed, so a
// matching outcome proves the frontier captured every source of
// nondeterminism. The session records its own trace as it goes and
// flags the first checkpoint where it diverges from rec.
func Replay(rec *Recording, hooks Hooks) (*Session, error) {
	if err := rec.Validate(); err != nil {
		return nil, err
	}
	spec := rec.Spec
	newRec := &Recording{
		Version: FormatVersion, Spec: spec,
		VClock0: rec.VClock0, Payload: rec.Payload, PayloadDigest: rec.PayloadDigest,
	}
	kopts := []kernel.Option{kernel.WithVClock(rec.VClock0)}
	if spec.Chaos != nil {
		kopts = append(kopts, kernel.WithChaosScript(*spec.Chaos, rec.Chaos))
	}
	s := &Session{Spec: spec, Rec: newRec, replayOf: rec, divergence: -1}
	if err := s.boot(kopts, hooks); err != nil {
		return nil, err
	}
	return s, nil
}

// boot prepares the world, runs any offline phase, installs the
// recording hooks, launches the workload, and takes checkpoint 0.
func (s *Session) boot(kopts []kernel.Option, hooks Hooks) error {
	mech := s.Spec.Mechanism
	if mech == "" {
		mech = "native"
	}
	vs, ok := variants.ByName(mech)
	if !ok {
		return fmt.Errorf("rr: unknown mechanism %q", mech)
	}

	w := interpose.NewWorld(kopts...)
	s.W = w
	apps.RegisterAll(w.Reg)
	if err := apps.SetupFS(w.K.FS); err != nil {
		return err
	}

	// The K23 offline phase runs before the recording hooks attach: it is
	// the controlled pre-production environment, deterministic given the
	// spec, and with no event hook installed the kernel's event ordinal
	// does not advance — identically so on replay.
	logPath := ""
	if vs.NeedsOfflineLog {
		off := &core.Offline{LogDir: "/var/k23/logs"}
		run, err := off.Start(w, s.Spec.Path, s.Spec.Argv, nil)
		if err != nil {
			return err
		}
		if s.Spec.Server {
			// Drive the offline server with an all-zeros connection so it
			// serves and exits instead of polling its whole budget away.
			// The payload is a constant, so the offline phase stays
			// deterministic and identical between record and replay.
			req := make([]byte, apps.RequestSize)
			port := apps.BasePort + run.Process().PID
			for i := 0; i < PollTries; i++ {
				w.K.Run(PollSlice)
				if err := w.K.InjectConn(port, req, s.Spec.Requests, nil); err == nil {
					break
				}
			}
		}
		_ = w.K.RunUntilExit(run.Process(), 200_000_000)
		if _, err := run.Finish(); err != nil {
			return err
		}
		name := s.Spec.Path[strings.LastIndexByte(s.Spec.Path, '/')+1:]
		logPath = off.LogPath(name)
	}

	if hooks.BeforeLaunch != nil {
		hooks.BeforeLaunch(w)
	}

	s.th, s.eh = newFNV(), newFNV()
	prevStep := w.K.StepTrace
	w.K.StepTrace = func(tid int, rip uint64, op cpu.Op) {
		s.th.writeU64(uint64(tid), rip, uint64(op))
		s.steps++
		if prevStep != nil {
			prevStep(tid, rip, op)
		}
	}
	w.K.AddEventHook(func(e kernel.Event) {
		if e.Kind == kernel.EvEnter {
			s.syscalls++
		}
		r := EventRec{
			Seq: e.Seq, PID: e.PID, TID: e.TID, Kind: e.Kind.String(),
			Num: e.Num, Site: e.Site, Ret: e.Ret, Clock: e.Clock, Detail: e.Detail,
		}
		s.eh.writeString(r.hashLine())
		if e.Kind == kernel.EvEnter {
			r.Args = append([]uint64(nil), e.Args[:]...)
		}
		s.events = append(s.events, r)
	})

	s.launcher = vs.New(interpose.Config{}, logPath)
	p, err := s.launcher.Launch(w, s.Spec.Path, s.Spec.Argv, s.Spec.Env)
	if err != nil {
		return err
	}
	s.P = p
	s.lastCkpt = w.K.VClock
	return s.takeCheckpoint()
}

// takeCheckpoint snapshots the world and the resumable recorder state.
// In replay mode it also compares the new checkpoint's position and
// hashes against the recording under replay, flagging the first
// divergent index.
func (s *Session) takeCheckpoint() error {
	var prev *kernel.Snapshot
	if n := len(s.ckpts); n > 0 {
		prev = s.ckpts[n-1].snap
	}
	snap, err := s.W.K.Checkpoint(prev)
	if err != nil {
		return fmt.Errorf("rr: checkpoint %d: %v", len(s.ckpts), err)
	}
	copied, shared := snap.ASDelta()
	c := &liveCkpt{
		meta: CkptMeta{
			Index: len(s.ckpts), Seq: s.W.K.EventSeq(), VClock: s.W.K.VClock,
			Steps: s.steps, Events: len(s.events),
			TraceHash: s.th.h, EventHash: s.eh.h,
			PagesCopied: copied, PagesShared: shared,
		},
		snap: snap, traceH: s.th.h, eventH: s.eh.h,
		steps: s.steps, syscalls: s.syscalls,
		evCount: len(s.events), injected: s.injected,
	}
	s.ckpts = append(s.ckpts, c)
	if s.replayOf != nil && s.divergence < 0 {
		i := c.meta.Index
		if i >= len(s.replayOf.Checkpoints) || s.replayOf.Checkpoints[i] != c.meta {
			s.divergence = i
		}
	}
	s.lastCkpt = s.W.K.VClock
	return nil
}

// Run drives the session to completion, taking checkpoints at the
// configured virtual-tick interval, and finalizes Rec.
func (s *Session) Run() error {
	if s.Spec.Server && !s.injected {
		if err := s.inject(0); err != nil {
			return err
		}
	}
	if err := s.runMain(0); err != nil {
		return err
	}
	s.finalize()
	return nil
}

// inject polls for the server's listener with the canonical poll slice,
// then queues the recorded payload. The post-injection checkpoint is
// the first main-loop restore point.
func (s *Session) inject(untilSeq uint64) error {
	k := s.W.K
	payload := []byte(s.Rec.Payload)
	port := apps.BasePort + s.P.PID
	for i := 0; i < PollTries; i++ {
		if s.P.State != kernel.ProcRunning {
			return nil
		}
		if untilSeq > 0 && k.EventSeq() >= untilSeq {
			return nil
		}
		if s.steps >= s.Spec.maxInsts() {
			return fmt.Errorf("rr: budget exhausted while waiting for listen")
		}
		k.Run(PollSlice)
		if err := k.InjectConn(port, payload, s.Spec.Requests, nil); err == nil {
			s.injected = true
			if !s.retracing {
				return s.takeCheckpoint()
			}
			return nil
		}
	}
	return fmt.Errorf("rr: server on port %d never listened", port)
}

// runMain is the canonical main drive loop: fixed Run slices, a
// checkpoint whenever the virtual clock has advanced a full interval.
// With untilSeq > 0 it stops once the kernel has emitted an event with
// that ordinal (kernel.StopAtSeq makes the stop land at the precise
// quantum boundary without perturbing execution).
func (s *Session) runMain(untilSeq uint64) error {
	k := s.W.K
	every := s.Spec.checkpointEvery()
	for s.P.State == kernel.ProcRunning {
		if untilSeq > 0 && k.EventSeq() >= untilSeq {
			return nil
		}
		if s.steps >= s.Spec.maxInsts() {
			return fmt.Errorf("rr: budget exhausted after %d instructions", s.steps)
		}
		n := k.Run(Slice)
		if n == 0 && s.P.State == kernel.ProcRunning {
			return fmt.Errorf("rr: deadlock: pid %d has no runnable threads", s.P.PID)
		}
		if !s.retracing && k.VClock-s.lastCkpt >= every {
			if err := s.takeCheckpoint(); err != nil {
				return err
			}
		}
	}
	return nil
}

// finalize captures the run's observable outcome into Rec.
func (s *Session) finalize() {
	k := s.W.K
	s.Rec.Chaos = append([]kernel.ChaosDecision(nil), k.ChaosDecisions()...)
	s.Rec.Events = append([]EventRec(nil), s.events...)
	s.Rec.Checkpoints = s.ckptMetas()
	s.Rec.Final = s.currentFinal()
	if s.replayOf != nil && s.divergence < 0 {
		if s.Rec.Final != s.replayOf.Final {
			s.finalDiverged = true
		} else if !sameEvents(s.Rec.Events, s.replayOf.Events) {
			// The re-executed run matched its own checkpoints and final
			// hashes but the recording's *event lines* disagree with what
			// replay produced: the recording was edited or corrupted after
			// the fact (hashes in the file still describe the true stream).
			s.finalDiverged = true
		}
	}
	s.finished = true
}

// sameEvents compares two event streams field by field.
func sameEvents(a, b []EventRec) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !eventEq(&a[i], &b[i]) {
			return false
		}
	}
	return true
}

func (s *Session) ckptMetas() []CkptMeta {
	out := make([]CkptMeta, len(s.ckpts))
	for i, c := range s.ckpts {
		out[i] = c.meta
	}
	return out
}

// currentFinal reads the observable outcome off the live world.
func (s *Session) currentFinal() Final {
	k := s.W.K
	return Final{
		TraceHash: s.th.h, EventHash: s.eh.h,
		VFSHash:  difftest.HashFS(k.FS),
		Steps:    s.steps, Syscalls: s.syscalls,
		Events: len(s.events), Seq: k.EventSeq(),
		ExitCode: s.P.Exit.Code, ExitSignal: s.P.Exit.Signal,
		ChaosInjected: k.ChaosInjected(),
		StdoutDigest:  digest(s.P.Stdout), StderrDigest: digest(s.P.Stderr),
	}
}

// Diverged reports whether a replay mismatched the recording it was
// replaying: the first divergent checkpoint index, or the checkpoint
// count if only the final state differed.
func (s *Session) Diverged() (ckptIndex int, diverged bool) {
	if s.divergence >= 0 {
		return s.divergence, true
	}
	if s.finalDiverged {
		return len(s.ckpts), true
	}
	return -1, false
}

// NumCheckpoints returns how many live checkpoints the session holds.
func (s *Session) NumCheckpoints() int { return len(s.ckpts) }

// Launcher exposes the session's interposer launcher (for stats).
func (s *Session) Launcher() interpose.Launcher { return s.launcher }

// ReplayOf returns the recording this session is replaying, nil for a
// recording session.
func (s *Session) ReplayOf() *Recording { return s.replayOf }

// restoreTo rewinds the world and the recorder state to checkpoint i.
func (s *Session) restoreTo(i int) *liveCkpt {
	c := s.ckpts[i]
	s.W.K.Restore(c.snap)
	s.th.h, s.eh.h = c.traceH, c.eventH
	s.steps, s.syscalls = c.steps, c.syscalls
	s.events = append([]EventRec(nil), s.events[:c.evCount]...)
	s.injected = c.injected
	return c
}

// RunFromCheckpoint restores checkpoint i and re-executes the run to
// completion with the canonical drive loop, returning the observable
// outcome. A correct engine returns exactly Rec.Final for every i —
// the replay-equivalence battery's core assertion.
func (s *Session) RunFromCheckpoint(i int) (Final, error) {
	if !s.finished {
		return Final{}, fmt.Errorf("rr: session has not finished its primary run")
	}
	if i < 0 || i >= len(s.ckpts) {
		return Final{}, fmt.Errorf("rr: checkpoint %d out of range [0,%d)", i, len(s.ckpts))
	}
	s.restoreTo(i)
	s.retracing = true
	defer func() { s.retracing = false }()
	if s.Spec.Server && !s.injected {
		if err := s.inject(0); err != nil {
			return Final{}, err
		}
	}
	if err := s.runMain(0); err != nil {
		return Final{}, err
	}
	return s.currentFinal(), nil
}

// Seek reports the outcome of a SeekSeq call.
type Seek struct {
	// Target is the requested event ordinal.
	Target uint64
	// From is the checkpoint the seek restored, or -1 when the target
	// precedes checkpoint 0 and the seek replayed from tick 0 instead.
	From int
	// ReExecuted counts instructions re-executed from the checkpoint to
	// the target — the replay-latency metric.
	ReExecuted uint64
	// Seq and VClock are the kernel's position after the stop: the event
	// with ordinal Target-? has been emitted (Seq >= Target unless the
	// run ended first).
	Seq    uint64
	VClock uint64
}

// SeekSeq restores the nearest checkpoint at or before the target event
// ordinal and re-executes forward until the event with that ordinal has
// been emitted, leaving the world positioned just past it. This is the
// `k23 -replay -until <seq>` engine: reaching an audit-ledger escape's
// seq costs only the tail re-execution from the nearest checkpoint, not
// the full run. (A checkpoint's Seq is the ordinal the next event will
// carry, so a checkpoint with Seq <= target lies strictly before the
// target event's emission.) A target before checkpoint 0 — a
// launch-time event, e.g. a startup-category escape — replays the
// launch alone in a fresh world and reports From = -1; the session's
// own world is left untouched in that case.
func (s *Session) SeekSeq(target uint64) (*Seek, error) {
	if !s.finished {
		return nil, fmt.Errorf("rr: session has not finished its primary run")
	}
	best := -1
	for i, c := range s.ckpts {
		if c.meta.Seq <= target {
			best = i
		}
	}
	if best < 0 {
		// The target event was emitted during Launch, before checkpoint 0
		// could exist. Launch is host-driven and atomic — the scheduler
		// never runs inside it — so the nearest stop boundary past the
		// target is the post-launch state. Replay it in a fresh world;
		// the cost is the launch alone, not the full run.
		sub, err := Replay(s.Rec, Hooks{})
		if err != nil {
			return nil, fmt.Errorf("rr: seek to launch-time seq %d: %v", target, err)
		}
		return &Seek{
			Target: target, From: -1,
			ReExecuted: sub.steps,
			Seq:        sub.W.K.EventSeq(), VClock: sub.W.K.VClock,
		}, nil
	}
	s.restoreTo(best)
	s.retracing = true
	defer func() { s.retracing = false }()
	k := s.W.K
	start := s.steps
	k.StopAtSeq = target
	defer func() { k.StopAtSeq = 0 }()
	if s.Spec.Server && !s.injected {
		if err := s.inject(target + 1); err != nil {
			return nil, err
		}
	}
	if s.P.State == kernel.ProcRunning && k.EventSeq() < target+1 {
		if err := s.runMain(target + 1); err != nil {
			return nil, err
		}
	}
	return &Seek{
		Target: target, From: best,
		ReExecuted: s.steps - start,
		Seq:        k.EventSeq(), VClock: k.VClock,
	}, nil
}
