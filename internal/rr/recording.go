package rr

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"k23/internal/kernel"
)

// FormatVersion is the recording schema version; ReadJSONL rejects
// recordings written by a different version.
const FormatVersion = 1

// EventRec is one recorded kernel event. It carries the syscall
// arguments (EvEnter only) so reverse queries can filter on them
// without re-executing.
type EventRec struct {
	Seq    uint64   `json:"seq"`
	PID    int      `json:"pid"`
	TID    int      `json:"tid"`
	Kind   string   `json:"kind"`
	Num    uint64   `json:"num"`
	Site   uint64   `json:"site,omitempty"`
	Ret    uint64   `json:"ret,omitempty"`
	Clock  uint64   `json:"clock"`
	Args   []uint64 `json:"args,omitempty"`
	Detail string   `json:"detail,omitempty"`
}

// hashLine is the canonical accumulation line for the running event
// hash — the recorder writes exactly this per event, and Validate
// recomputes it over the stored stream to detect edited event lines.
func (e *EventRec) hashLine() string {
	return fmt.Sprintf("%d/%d %s %d %#x %#x %s\n",
		e.PID, e.TID, e.Kind, e.Num, e.Site, e.Ret, e.Detail)
}

// eventStreamHash folds the whole stream through hashLine.
func eventStreamHash(events []EventRec) uint64 {
	h := newFNV()
	for i := range events {
		h.writeString(events[i].hashLine())
	}
	return h.h
}

// CkptMeta describes one checkpoint: where it sits in the run (event
// ordinal, virtual clock, retired instructions) and the resumable hash
// states at that point. The delta-page counters are the checkpoint
// space metric (EXPERIMENTS.md E19).
type CkptMeta struct {
	Index       int    `json:"index"`
	Seq         uint64 `json:"seq"`
	VClock      uint64 `json:"vclock"`
	Steps       uint64 `json:"steps"`
	Events      int    `json:"events"`
	TraceHash   uint64 `json:"trace_hash"`
	EventHash   uint64 `json:"event_hash"`
	PagesCopied int    `json:"pages_copied"`
	PagesShared int    `json:"pages_shared"`
}

// Final is the observable outcome of the run — the replay-equivalence
// comparison surface.
type Final struct {
	TraceHash     uint64 `json:"trace_hash"`
	EventHash     uint64 `json:"event_hash"`
	VFSHash       uint64 `json:"vfs_hash"`
	Steps         uint64 `json:"steps"`
	Syscalls      uint64 `json:"syscalls"`
	Events        int    `json:"events"`
	Seq           uint64 `json:"seq"`
	ExitCode      int    `json:"exit_code"`
	ExitSignal    int    `json:"exit_signal,omitempty"`
	ChaosInjected uint64 `json:"chaos_injected,omitempty"`
	StdoutDigest  uint64 `json:"stdout_digest"`
	StderrDigest  uint64 `json:"stderr_digest"`
}

// Recording is one run's nondeterminism frontier plus its observable
// trace: the spec and the derived frontier values (initial clock,
// payload, chaos decisions), the full kernel event stream, the
// checkpoint metadata, and the final hashes.
type Recording struct {
	Version       int
	Spec          RunSpec
	VClock0       uint64
	Payload       string
	PayloadDigest uint64
	Chaos         []kernel.ChaosDecision
	Events        []EventRec
	Checkpoints   []CkptMeta
	Final         Final
}

// jsonLine is the JSONL envelope: one line per record, discriminated by
// T ("header", "chaos", "event", "ckpt", "final").
type jsonLine struct {
	T             string                 `json:"t"`
	Version       int                    `json:"version,omitempty"`
	Spec          *RunSpec               `json:"spec,omitempty"`
	VClock0       uint64                 `json:"vclock0,omitempty"`
	Payload       string                 `json:"payload,omitempty"`
	PayloadDigest uint64                 `json:"payload_digest,omitempty"`
	Chaos         *kernel.ChaosDecision  `json:"chaos,omitempty"`
	Event         *EventRec              `json:"event,omitempty"`
	Ckpt          *CkptMeta              `json:"ckpt,omitempty"`
	Final         *Final                 `json:"final,omitempty"`
}

// WriteJSONL serializes the recording: a header line, then every chaos
// decision, event, and checkpoint in stream order, then the final line.
func (r *Recording) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	spec := r.Spec
	if err := enc.Encode(jsonLine{
		T: "header", Version: r.Version, Spec: &spec,
		VClock0: r.VClock0, Payload: r.Payload, PayloadDigest: r.PayloadDigest,
	}); err != nil {
		return err
	}
	for i := range r.Chaos {
		if err := enc.Encode(jsonLine{T: "chaos", Chaos: &r.Chaos[i]}); err != nil {
			return err
		}
	}
	for i := range r.Events {
		if err := enc.Encode(jsonLine{T: "event", Event: &r.Events[i]}); err != nil {
			return err
		}
	}
	for i := range r.Checkpoints {
		if err := enc.Encode(jsonLine{T: "ckpt", Ckpt: &r.Checkpoints[i]}); err != nil {
			return err
		}
	}
	final := r.Final
	if err := enc.Encode(jsonLine{T: "final", Final: &final}); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadJSONL parses and validates a recording.
func ReadJSONL(rd io.Reader) (*Recording, error) {
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	rec := &Recording{}
	sawHeader, sawFinal := false, false
	lineNo := 0
	for sc.Scan() {
		lineNo++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var ln jsonLine
		if err := json.Unmarshal(sc.Bytes(), &ln); err != nil {
			return nil, fmt.Errorf("rr: line %d: %v", lineNo, err)
		}
		switch ln.T {
		case "header":
			if sawHeader {
				return nil, fmt.Errorf("rr: line %d: duplicate header", lineNo)
			}
			if ln.Version != FormatVersion {
				return nil, fmt.Errorf("rr: line %d: format version %d, want %d", lineNo, ln.Version, FormatVersion)
			}
			if ln.Spec == nil {
				return nil, fmt.Errorf("rr: line %d: header without spec", lineNo)
			}
			rec.Version = ln.Version
			rec.Spec = *ln.Spec
			rec.VClock0 = ln.VClock0
			rec.Payload = ln.Payload
			rec.PayloadDigest = ln.PayloadDigest
			sawHeader = true
		case "chaos":
			if ln.Chaos == nil {
				return nil, fmt.Errorf("rr: line %d: chaos line without body", lineNo)
			}
			rec.Chaos = append(rec.Chaos, *ln.Chaos)
		case "event":
			if ln.Event == nil {
				return nil, fmt.Errorf("rr: line %d: event line without body", lineNo)
			}
			rec.Events = append(rec.Events, *ln.Event)
		case "ckpt":
			if ln.Ckpt == nil {
				return nil, fmt.Errorf("rr: line %d: ckpt line without body", lineNo)
			}
			rec.Checkpoints = append(rec.Checkpoints, *ln.Ckpt)
		case "final":
			if ln.Final == nil {
				return nil, fmt.Errorf("rr: line %d: final line without body", lineNo)
			}
			rec.Final = *ln.Final
			sawFinal = true
		default:
			return nil, fmt.Errorf("rr: line %d: unknown record type %q", lineNo, ln.T)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("rr: %v", err)
	}
	if !sawHeader {
		return nil, fmt.Errorf("rr: missing header line")
	}
	if !sawFinal {
		return nil, fmt.Errorf("rr: missing final line (truncated recording?)")
	}
	if err := rec.Validate(); err != nil {
		return nil, err
	}
	return rec, nil
}

// Validate checks the recording's internal consistency: monotone event
// ordinals, ordered checkpoints within the event range, a monotone
// chaos query stream, a payload matching its digest, and an event
// stream that re-hashes to the recorded final event hash (so edited
// event lines are rejected without any re-execution). obsvcheck -rr
// runs exactly this.
func (r *Recording) Validate() error {
	if r.Version != FormatVersion {
		return fmt.Errorf("rr: format version %d, want %d", r.Version, FormatVersion)
	}
	if r.Payload != "" && digest([]byte(r.Payload)) != r.PayloadDigest {
		return fmt.Errorf("rr: payload digest mismatch (corrupted payload)")
	}
	for i := 1; i < len(r.Events); i++ {
		if r.Events[i].Seq <= r.Events[i-1].Seq {
			return fmt.Errorf("rr: event %d: seq %d not after %d", i, r.Events[i].Seq, r.Events[i-1].Seq)
		}
	}
	for i := range r.Events {
		if _, ok := kernel.EventKindByName(r.Events[i].Kind); !ok {
			return fmt.Errorf("rr: event %d: unknown kind %q", i, r.Events[i].Kind)
		}
	}
	for i := range r.Checkpoints {
		c := &r.Checkpoints[i]
		if c.Index != i {
			return fmt.Errorf("rr: checkpoint %d: index %d out of order", i, c.Index)
		}
		if i > 0 {
			prev := &r.Checkpoints[i-1]
			if c.Seq < prev.Seq || c.Steps < prev.Steps || c.VClock < prev.VClock {
				return fmt.Errorf("rr: checkpoint %d: position regresses", i)
			}
		}
		if c.Events > len(r.Events) {
			return fmt.Errorf("rr: checkpoint %d: event count %d exceeds stream length %d", i, c.Events, len(r.Events))
		}
	}
	for i := 1; i < len(r.Chaos); i++ {
		if r.Chaos[i].Q <= r.Chaos[i-1].Q {
			return fmt.Errorf("rr: chaos decision %d: query ordinal %d not after %d", i, r.Chaos[i].Q, r.Chaos[i-1].Q)
		}
	}
	if r.Final.Events != len(r.Events) {
		return fmt.Errorf("rr: final records %d events, stream has %d", r.Final.Events, len(r.Events))
	}
	if h := eventStreamHash(r.Events); h != r.Final.EventHash {
		return fmt.Errorf("rr: event stream hashes to %#x but final records %#x (edited event lines?)", h, r.Final.EventHash)
	}
	return nil
}

// EquivalentTo compares two recordings' observable outcomes and
// checkpoint trajectories, returning a description of the first
// difference, or nil when replay-equivalent.
func (r *Recording) EquivalentTo(o *Recording) error {
	n := len(r.Checkpoints)
	if len(o.Checkpoints) < n {
		n = len(o.Checkpoints)
	}
	for i := 0; i < n; i++ {
		a, b := &r.Checkpoints[i], &o.Checkpoints[i]
		if *a != *b {
			return fmt.Errorf("rr: checkpoint %d diverges: %+v vs %+v", i, *a, *b)
		}
	}
	if len(r.Checkpoints) != len(o.Checkpoints) {
		return fmt.Errorf("rr: checkpoint count %d vs %d", len(r.Checkpoints), len(o.Checkpoints))
	}
	if r.Final != o.Final {
		return fmt.Errorf("rr: final state diverges: %+v vs %+v", r.Final, o.Final)
	}
	return nil
}
