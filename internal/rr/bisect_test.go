package rr

import (
	"testing"

	"k23/internal/kernel"
)

// TestBisectHandBuilt checks window localization on synthetic
// recordings with a known divergence point.
func TestBisectHandBuilt(t *testing.T) {
	mkEvents := func(n int) []EventRec {
		out := make([]EventRec, n)
		for i := range out {
			out[i] = EventRec{Seq: uint64(i), Kind: "enter", Num: uint64(i % 7), Clock: uint64(100 + i)}
		}
		return out
	}
	mkCkpts := func(hashes []uint64) []CkptMeta {
		out := make([]CkptMeta, len(hashes))
		for i, h := range hashes {
			out[i] = CkptMeta{Index: i, Seq: uint64(i * 10), Events: i * 10, TraceHash: h, EventHash: h}
		}
		return out
	}

	a := &Recording{Events: mkEvents(40), Checkpoints: mkCkpts([]uint64{1, 2, 3, 4}), Final: Final{TraceHash: 100}}

	// Identical recordings: no divergence.
	b := &Recording{Events: mkEvents(40), Checkpoints: mkCkpts([]uint64{1, 2, 3, 4}), Final: Final{TraceHash: 100}}
	if d := Bisect(a, b); d != nil {
		t.Fatalf("identical recordings bisected to %v", d)
	}

	// Diverge in window (2,3]: checkpoints 0-2 match, 3 differs; the
	// first differing event is at index 25 (seq 25).
	b = &Recording{Events: mkEvents(40), Checkpoints: mkCkpts([]uint64{1, 2, 3, 999}), Final: Final{TraceHash: 200}}
	b.Events[25].Ret = 0xbad
	d := Bisect(a, b)
	if d == nil {
		t.Fatalf("divergence not found")
	}
	if d.LastGood != 2 || d.FirstBad != 3 {
		t.Fatalf("window = (%d, %d], want (2, 3]", d.LastGood, d.FirstBad)
	}
	if d.Seq != 25 {
		t.Fatalf("first bad seq = %d, want 25", d.Seq)
	}

	// Divergence after the last checkpoint: all metas equal, finals
	// differ, event 38 differs.
	b = &Recording{Events: mkEvents(40), Checkpoints: mkCkpts([]uint64{1, 2, 3, 4}), Final: Final{TraceHash: 200}}
	b.Events[38].Num = 99
	d = Bisect(a, b)
	if d == nil || d.LastGood != 3 || d.FirstBad != -1 {
		t.Fatalf("tail divergence = %+v, want LastGood 3, FirstBad -1", d)
	}
	if d.Seq != 38 {
		t.Fatalf("tail divergence seq = %d, want 38", d.Seq)
	}

	// One stream is a strict prefix of the other.
	b = &Recording{Events: mkEvents(35), Checkpoints: mkCkpts([]uint64{1, 2, 3}), Final: Final{TraceHash: 300}}
	d = Bisect(a, b)
	if d == nil || d.LastGood != 2 || d.FirstBad != 3 {
		t.Fatalf("prefix divergence = %+v, want LastGood 2, FirstBad 3", d)
	}
	if d.Seq != 35 {
		t.Fatalf("prefix divergence seq = %d, want 35", d.Seq)
	}
}

// TestBisectPlantedDivergence records a chaotic server run, replays it
// with ONE chaos decision's value flipped — a single-bit perturbation
// of the frontier — and asserts the bisector localizes the divergence
// to the checkpoint window containing that decision.
func TestBisectPlantedDivergence(t *testing.T) {
	spec := redisSpec()
	spec.Chaos = &kernel.ChaosProfile{ShortRead: 200, ShortWrite: 200}
	spec.ChaosSeed = 9
	s := record(t, spec)
	if len(s.Rec.Chaos) < 2 {
		t.Skipf("only %d chaos decisions; cannot plant mid-run", len(s.Rec.Chaos))
	}

	// Plant: flip one short-read/write length in the script's second
	// half. clampPrefix keeps any value legal, so setting a length != the
	// original guarantees a different prefix split at that decision.
	mangled := *s.Rec
	mangled.Chaos = append([]kernel.ChaosDecision(nil), s.Rec.Chaos...)
	idx := -1
	for i := len(mangled.Chaos) / 2; i < len(mangled.Chaos); i++ {
		if mangled.Chaos[i].Val > 1 {
			idx = i
			break
		}
	}
	if idx < 0 {
		for i := range mangled.Chaos {
			if mangled.Chaos[i].Val > 1 {
				idx = i
				break
			}
		}
	}
	if idx < 0 {
		t.Skip("no chaos decision with a mutable value")
	}
	mangled.Chaos[idx].Val = 1

	r, err := Replay(&mangled, Hooks{})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if err := r.Run(); err != nil {
		t.Fatalf("replay: %v", err)
	}
	if _, diverged := r.Diverged(); !diverged {
		t.Fatalf("planted divergence not detected by replay")
	}

	d := Bisect(s.Rec, r.Rec)
	if d == nil {
		t.Fatalf("bisector found no divergence")
	}

	// Ground truth by linear scan: the first differing event index.
	want := -1
	n := len(s.Rec.Events)
	if len(r.Rec.Events) < n {
		n = len(r.Rec.Events)
	}
	for i := 0; i < n; i++ {
		if !eventEq(&s.Rec.Events[i], &r.Rec.Events[i]) {
			want = i
			break
		}
	}
	if want < 0 {
		t.Fatalf("streams equal on common prefix; planted divergence produced no event change")
	}
	if d.Seq != s.Rec.Events[want].Seq {
		t.Fatalf("bisector seq %d, linear-scan ground truth %d", d.Seq, s.Rec.Events[want].Seq)
	}

	// Window correctness: the divergent seq must lie after the last good
	// checkpoint and, when a first-bad checkpoint exists, before it.
	if d.LastGood >= 0 && d.Seq < s.Rec.Checkpoints[d.LastGood].Seq {
		t.Fatalf("divergent seq %d precedes last good checkpoint (seq %d)", d.Seq, s.Rec.Checkpoints[d.LastGood].Seq)
	}
	if d.FirstBad >= 0 && d.FirstBad < len(s.Rec.Checkpoints) && d.Seq >= s.Rec.Checkpoints[d.FirstBad].Seq {
		t.Fatalf("divergent seq %d not before first bad checkpoint (seq %d)", d.Seq, s.Rec.Checkpoints[d.FirstBad].Seq)
	}
}
