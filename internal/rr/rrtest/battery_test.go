package rrtest

import (
	"testing"

	"k23/internal/interpose/variants"
	"k23/internal/kernel"
	"k23/internal/rr"
)

// TestAppsReplayEquivalence runs the battery over all 9 apps natively.
// Subtests run in parallel: each session owns its world, so the battery
// under -race also proves the engine shares no mutable state.
func TestAppsReplayEquivalence(t *testing.T) {
	for _, spec := range AppSpecs() {
		spec := spec
		t.Run(SubtestName(spec), func(t *testing.T) {
			t.Parallel()
			Battery(t, spec)
		})
	}
}

// TestPitfallMatrixReplayEquivalence crosses the Table 3 systems
// (zpoline-ultra, lazypoline, k23-ultra+) with a file workload and a
// server workload: checkpoints now snapshot live interposer state
// (rewrite site sets, SUD selectors, K23 handoff counters), so this is
// the HostState round-trip proof under real mechanisms.
func TestPitfallMatrixReplayEquivalence(t *testing.T) {
	apps := AppSpecs()
	var cat, redis rr.RunSpec
	for _, s := range apps {
		switch s.Name {
		case "cat":
			cat = s
		case "redis":
			redis = s
		}
	}
	for _, col := range variants.Table3Columns() {
		for _, base := range []rr.RunSpec{cat, redis} {
			spec := base
			spec.Mechanism = col.Name
			t.Run(SubtestName(spec), func(t *testing.T) {
				t.Parallel()
				Battery(t, spec)
			})
		}
	}
}

// TestChaosSeedsReplayEquivalence records the redis workload under the
// default chaos profile with 8 distinct seeds and proves every
// perturbation schedule replays bit-identically from the recorded
// decision script (not the seed).
func TestChaosSeedsReplayEquivalence(t *testing.T) {
	apps := AppSpecs()
	var redis rr.RunSpec
	for _, s := range apps {
		if s.Name == "redis" {
			redis = s
		}
	}
	prof := kernel.DefaultChaosProfile()
	injected := false
	done := make(chan bool, 8)
	for seed := uint64(1); seed <= 8; seed++ {
		spec := redis
		spec.Name = "redis-chaos"
		spec.Chaos = &prof
		spec.ChaosSeed = seed * 0x9e3779b97f4a7c15
		t.Run(SubtestName(spec), func(t *testing.T) {
			t.Parallel()
			s, err := rr.Record(spec, rr.Hooks{})
			if err != nil {
				t.Fatalf("Record: %v", err)
			}
			if err := s.Run(); err != nil {
				t.Fatalf("record run: %v", err)
			}
			done <- s.Rec.Final.ChaosInjected > 0
			r, err := rr.Replay(s.Rec, rr.Hooks{})
			if err != nil {
				t.Fatalf("Replay: %v", err)
			}
			if err := r.Run(); err != nil {
				t.Fatalf("replay run: %v", err)
			}
			if err := s.Rec.EquivalentTo(r.Rec); err != nil {
				t.Fatalf("chaos replay not equivalent: %v", err)
			}
			for i := 0; i < s.NumCheckpoints(); i++ {
				got, err := s.RunFromCheckpoint(i)
				if err != nil {
					t.Fatalf("RunFromCheckpoint(%d): %v", i, err)
				}
				if got != s.Rec.Final {
					t.Fatalf("chaos replay from checkpoint %d diverged", i)
				}
			}
		})
	}
	t.Cleanup(func() {
		close(done)
		for d := range done {
			injected = injected || d
		}
		if !injected {
			t.Errorf("no chaos seed injected anything; the chaos leg of the battery is vacuous")
		}
	})
}
