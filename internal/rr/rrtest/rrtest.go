// Package rrtest is the replay-equivalence battery: the proof surface
// for the record/replay engine. It mirrors the difftest Mode pattern —
// a workload matrix crossed with engine configurations, every pair
// asserted bit-identical — but the axis here is HOW a run is re-executed
// (record, replay-from-tick-0 off the recorded frontier, replay from
// every checkpoint) rather than which execution engine runs it.
package rrtest

import (
	"fmt"
	"testing"

	"k23/internal/cpu/difftest"
	"k23/internal/rr"
)

// CheckpointEvery is the battery's checkpoint interval in virtual
// ticks, small enough that the workloads cross several boundaries.
const CheckpointEvery = 30_000

// AppSpecs converts the full difftest app matrix (the Table 2 set) into
// recordable run specs.
func AppSpecs() []rr.RunSpec {
	ws := difftest.AppWorkloads()
	out := make([]rr.RunSpec, 0, len(ws))
	for i, w := range ws {
		out = append(out, rr.RunSpec{
			Name: w.Name, Path: w.Path, Argv: w.Argv,
			Server: w.Server, Requests: w.Requests,
			Seed:            uint64(i)*0x9e3779b97f4a7c15 + 1,
			CheckpointEvery: CheckpointEvery,
		})
	}
	return out
}

// Battery is the core assertion: record spec, replay it from tick 0
// consuming only the recorded frontier, and re-execute from every
// checkpoint — all three must produce bit-identical trace, event, and
// VFS hashes (and exits, chaos counts, output digests).
func Battery(t *testing.T, spec rr.RunSpec) {
	t.Helper()

	s, err := rr.Record(spec, rr.Hooks{})
	if err != nil {
		t.Fatalf("%s: Record: %v", spec.Name, err)
	}
	if err := s.Run(); err != nil {
		t.Fatalf("%s: record run: %v", spec.Name, err)
	}
	if s.Rec.Final.ExitSignal != 0 {
		t.Fatalf("%s: workload died by signal: %+v", spec.Name, s.Rec.Final)
	}
	if err := s.Rec.Validate(); err != nil {
		t.Fatalf("%s: recording invalid: %v", spec.Name, err)
	}

	// Replay from tick 0, frontier-only.
	r, err := rr.Replay(s.Rec, rr.Hooks{})
	if err != nil {
		t.Fatalf("%s: Replay: %v", spec.Name, err)
	}
	if err := r.Run(); err != nil {
		t.Fatalf("%s: replay run: %v", spec.Name, err)
	}
	if i, diverged := r.Diverged(); diverged {
		t.Fatalf("%s: replay diverged at checkpoint %d", spec.Name, i)
	}
	if err := s.Rec.EquivalentTo(r.Rec); err != nil {
		t.Fatalf("%s: replay-from-0 not equivalent: %v", spec.Name, err)
	}

	// Replay from every checkpoint.
	for i := 0; i < s.NumCheckpoints(); i++ {
		got, err := s.RunFromCheckpoint(i)
		if err != nil {
			t.Fatalf("%s: RunFromCheckpoint(%d): %v", spec.Name, i, err)
		}
		if got != s.Rec.Final {
			t.Fatalf("%s: replay from checkpoint %d diverged:\n got  %+v\n want %+v",
				spec.Name, i, got, s.Rec.Final)
		}
	}
}

// SubtestName labels a matrix cell.
func SubtestName(spec rr.RunSpec) string {
	if spec.Mechanism == "" {
		return spec.Name
	}
	return fmt.Sprintf("%s-%s", spec.Name, spec.Mechanism)
}
